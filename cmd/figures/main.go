// Command figures regenerates the paper's evaluation artifacts: Table 1,
// Table 2, Figures 3–9 and the §4 summary statistics, as text (and
// optionally CSV).
//
// Usage:
//
//	figures -all            # everything (several minutes)
//	figures -table1 -table2
//	figures -fig 3 -fig 6   # selected figures
//	figures -summary
//	figures -all -csv out/  # additionally write CSV files
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/figures"
	"repro/internal/nas"
	"repro/internal/obs"
	"repro/internal/report"
)

type figList []int

func (f *figList) String() string { return fmt.Sprint(*f) }
func (f *figList) Set(v string) error {
	var n int
	if _, err := fmt.Sscanf(v, "%d", &n); err != nil {
		return err
	}
	if n < 3 || n > 9 {
		return fmt.Errorf("figures 3–9 exist")
	}
	*f = append(*f, n)
	return nil
}

func main() {
	var figs figList
	var (
		all     = flag.Bool("all", false, "regenerate everything")
		table1  = flag.Bool("table1", false, "regenerate Table 1")
		table2  = flag.Bool("table2", false, "regenerate Table 2")
		summary = flag.Bool("summary", false, "regenerate the §4 summary statistics")
		csvDir  = flag.String("csv", "", "directory to also write CSV files into")
		quiet   = flag.Bool("q", false, "suppress progress output")
		workers = flag.Int("workers", 0, "evaluation worker pool size (0 = GOMAXPROCS, 1 = serial); output is identical either way")

		traceOut  = flag.String("trace", "", "write a JSON span trace (spans + metrics) to this file")
		metrics   = flag.Bool("metrics", false, "print collected metrics to stderr on exit")
		debugAddr = flag.String("debug-addr", "", "serve net/http/pprof, expvar and metrics on this address (e.g. localhost:6060)")
	)
	flag.Var(&figs, "fig", "figure number to regenerate (repeatable, 3–9)")
	flag.Parse()

	if *all {
		*table1, *table2, *summary = true, true, true
		figs = []int{3, 4, 5, 6, 7, 8, 9}
	}
	if !*table1 && !*table2 && !*summary && len(figs) == 0 {
		flag.Usage()
		os.Exit(2)
	}

	// Observability root: nil (zero-cost no-op) unless requested. Figures
	// are byte-identical either way.
	var scope *obs.Scope
	if *traceOut != "" || *metrics || *debugAddr != "" {
		scope = obs.New("figures")
	}
	if *debugAddr != "" {
		addr, stop, err := obs.ServeDebug(*debugAddr, scope)
		if err != nil {
			fatal("debug server: %v", err)
		}
		defer stop()
		fmt.Fprintf(os.Stderr, "figures: debug server on http://%s/debug/pprof/\n", addr)
	}
	defer func() {
		scope.End()
		if *traceOut != "" {
			f, err := os.Create(*traceOut)
			if err != nil {
				fatal("%v", err)
			}
			werr := scope.WriteTrace(f)
			if cerr := f.Close(); werr == nil {
				werr = cerr
			}
			if werr != nil {
				fatal("writing trace: %v", werr)
			}
			fmt.Fprintf(os.Stderr, "figures: trace written to %s\n", *traceOut)
		}
		if *metrics {
			scope.Metrics().WriteText(os.Stderr)
		}
	}()

	r := figures.NewRunner()
	r.Workers = *workers
	r.Obs = scope
	if !*quiet {
		r.Verbose = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "… "+format+"\n", args...)
		}
	}

	if *table2 {
		fmt.Println(report.Table2())
	}
	if *table1 {
		rows, err := r.Table1()
		if err != nil {
			fatal("%v", err)
		}
		fmt.Println(report.Table1(rows))
	}

	// Figure number → generator.
	gen := map[int]func() (*figures.Figure, error){
		3: func() (*figures.Figure, error) { return r.BenchFigure(nas.BT, figures.Targets()[0]) },
		4: func() (*figures.Figure, error) { return r.BenchFigure(nas.BT, figures.Targets()[1]) },
		5: func() (*figures.Figure, error) { return r.BenchFigure(nas.BT, figures.Targets()[2]) },
		6: r.LUFigure,
		7: func() (*figures.Figure, error) { return r.BenchFigure(nas.SP, figures.Targets()[0]) },
		8: func() (*figures.Figure, error) { return r.BenchFigure(nas.SP, figures.Targets()[1]) },
		9: func() (*figures.Figure, error) { return r.BenchFigure(nas.SP, figures.Targets()[2]) },
	}
	for _, n := range figs {
		f, err := gen[n]()
		if err != nil {
			fatal("figure %d: %v", n, err)
		}
		fmt.Println(report.Figure(f))
		if *csvDir != "" {
			path := filepath.Join(*csvDir, fmt.Sprintf("%s.csv", f.ID))
			if err := os.MkdirAll(*csvDir, 0o755); err != nil {
				fatal("%v", err)
			}
			if err := os.WriteFile(path, []byte(report.FigureCSV(f)), 0o644); err != nil {
				fatal("%v", err)
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", path)
		}
	}

	if *summary {
		s, err := r.Summarize()
		if err != nil {
			fatal("%v", err)
		}
		fmt.Println(report.Summary(s))
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "figures: "+format+"\n", args...)
	os.Exit(1)
}
