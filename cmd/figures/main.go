// Command figures regenerates the paper's evaluation artifacts: Table 1,
// Table 2, Figures 3–9 and the §4 summary statistics, as text (and
// optionally CSV).
//
// Usage:
//
//	figures -all            # everything (several minutes)
//	figures -table1 -table2
//	figures -fig 3 -fig 6   # selected figures
//	figures -summary
//	figures -all -csv out/  # additionally write CSV files
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/figures"
	"repro/internal/nas"
	"repro/internal/obs"
	"repro/internal/report"
)

type figList []int

func (f *figList) String() string { return fmt.Sprint(*f) }
func (f *figList) Set(v string) error {
	var n int
	if _, err := fmt.Sscanf(v, "%d", &n); err != nil {
		return err
	}
	if n < 3 || n > 9 {
		return fmt.Errorf("figures 3–9 exist")
	}
	*f = append(*f, n)
	return nil
}

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

// run is the CLI body, factored for tests: parse args, generate, render.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("figures", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var figs figList
	var (
		all     = fs.Bool("all", false, "regenerate everything")
		table1  = fs.Bool("table1", false, "regenerate Table 1")
		table2  = fs.Bool("table2", false, "regenerate Table 2")
		summary = fs.Bool("summary", false, "regenerate the §4 summary statistics")
		csvDir  = fs.String("csv", "", "directory to also write CSV files into")
		quiet   = fs.Bool("q", false, "suppress progress output")
		workers = fs.Int("workers", 0, "evaluation worker pool size (0 = GOMAXPROCS, 1 = serial); output is identical either way")

		traceOut  = fs.String("trace", "", "write a JSON span trace (spans + metrics) to this file")
		metrics   = fs.Bool("metrics", false, "print collected metrics to stderr on exit")
		debugAddr = fs.String("debug-addr", "", "serve net/http/pprof, expvar and metrics on this address (e.g. localhost:6060)")
	)
	fs.Var(&figs, "fig", "figure number to regenerate (repeatable, 3–9)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	fail := func(format string, a ...any) int {
		fmt.Fprintf(stderr, "figures: "+format+"\n", a...)
		return 1
	}

	if *all {
		*table1, *table2, *summary = true, true, true
		figs = []int{3, 4, 5, 6, 7, 8, 9}
	}
	if !*table1 && !*table2 && !*summary && len(figs) == 0 {
		fs.Usage()
		return 2
	}

	// Validate output destinations before the (potentially long) generation,
	// so a bad path fails in milliseconds rather than after minutes.
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			return fail("cannot create CSV directory: %v", err)
		}
	}
	var traceFile *os.File
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			return fail("cannot write trace: %v", err)
		}
		traceFile = f
		defer traceFile.Close()
	}

	// Observability root: nil (zero-cost no-op) unless requested. Figures
	// are byte-identical either way.
	var scope *obs.Scope
	if *traceOut != "" || *metrics || *debugAddr != "" {
		scope = obs.New("figures")
	}
	if *debugAddr != "" {
		addr, stop, err := obs.ServeDebug(*debugAddr, scope)
		if err != nil {
			return fail("debug server: %v", err)
		}
		defer stop()
		fmt.Fprintf(stderr, "figures: debug server on http://%s/debug/pprof/\n", addr)
	}

	r := figures.NewRunner()
	r.Workers = *workers
	r.Obs = scope
	if !*quiet {
		r.Verbose = func(format string, args ...any) {
			fmt.Fprintf(stderr, "… "+format+"\n", args...)
		}
	}

	if *table2 {
		fmt.Fprintln(stdout, report.Table2())
	}
	if *table1 {
		rows, err := r.Table1()
		if err != nil {
			return fail("%v", err)
		}
		fmt.Fprintln(stdout, report.Table1(rows))
	}

	// Figure number → generator.
	gen := map[int]func() (*figures.Figure, error){
		3: func() (*figures.Figure, error) { return r.BenchFigure(nas.BT, figures.Targets()[0]) },
		4: func() (*figures.Figure, error) { return r.BenchFigure(nas.BT, figures.Targets()[1]) },
		5: func() (*figures.Figure, error) { return r.BenchFigure(nas.BT, figures.Targets()[2]) },
		6: r.LUFigure,
		7: func() (*figures.Figure, error) { return r.BenchFigure(nas.SP, figures.Targets()[0]) },
		8: func() (*figures.Figure, error) { return r.BenchFigure(nas.SP, figures.Targets()[1]) },
		9: func() (*figures.Figure, error) { return r.BenchFigure(nas.SP, figures.Targets()[2]) },
	}
	for _, n := range figs {
		f, err := gen[n]()
		if err != nil {
			return fail("figure %d: %v", n, err)
		}
		fmt.Fprintln(stdout, report.Figure(f))
		if *csvDir != "" {
			path := filepath.Join(*csvDir, fmt.Sprintf("%s.csv", f.ID))
			if err := os.WriteFile(path, []byte(report.FigureCSV(f)), 0o644); err != nil {
				return fail("%v", err)
			}
			fmt.Fprintf(stderr, "wrote %s\n", path)
		}
	}

	if *summary {
		s, err := r.Summarize()
		if err != nil {
			return fail("%v", err)
		}
		fmt.Fprintln(stdout, report.Summary(s))
	}

	scope.End()
	if traceFile != nil {
		werr := scope.WriteTrace(traceFile)
		if cerr := traceFile.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return fail("writing trace: %v", werr)
		}
		fmt.Fprintf(stderr, "figures: trace written to %s\n", *traceOut)
	}
	if *metrics {
		scope.Metrics().WriteText(stderr)
	}
	return 0
}
