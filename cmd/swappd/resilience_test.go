package main

import (
	"bytes"
	"io"
	"net/http"
	"os"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/faultinject"
)

// TestHTTPServerTimeouts is a regression guard: the daemon's listener must
// never go back to the zero http.Server, where a client holding a socket
// open (slowloris) pins a goroutine and its connection forever.
func TestHTTPServerTimeouts(t *testing.T) {
	hs := newHTTPServer(nil)
	if hs.ReadHeaderTimeout <= 0 {
		t.Error("ReadHeaderTimeout unset: slow request lines pin connections")
	}
	if hs.ReadTimeout <= 0 {
		t.Error("ReadTimeout unset: drip-fed bodies pin connections")
	}
	if hs.IdleTimeout <= 0 {
		t.Error("IdleTimeout unset: idle keep-alives accumulate")
	}
	if hs.MaxHeaderBytes <= 0 {
		t.Error("MaxHeaderBytes unset: unbounded header memory per request")
	}
	if hs.WriteTimeout != 0 {
		t.Error("WriteTimeout must stay unset: evaluations legitimately run for minutes")
	}
}

// TestBadFaultSpec pins the usage exit for a malformed -faults value.
func TestBadFaultSpec(t *testing.T) {
	defer faultinject.Disarm()
	var out, errOut bytes.Buffer
	if code := run([]string{"-faults", "server.eval=explode"}, &out, &errOut, nil); code != 2 {
		t.Errorf("bad fault spec: exit %d, want 2 (stderr %q)", code, errOut.String())
	}
	if !strings.Contains(errOut.String(), "faultinject") {
		t.Errorf("stderr does not explain the bad spec: %q", errOut.String())
	}
}

// TestInjectedPanicRoundTrip is the daemon half of the acceptance
// scenario: with -faults arming one evaluation panic, the first request
// 500s, the daemon stays up and healthy, the identical retry succeeds,
// and the drain still exits 0.
func TestInjectedPanicRoundTrip(t *testing.T) {
	defer faultinject.Disarm()
	var started atomic.Int64
	release := make(chan struct{})
	close(release) // never park: the stub returns immediately
	evalOverride = stubEval(&started, release)
	defer func() { evalOverride = nil }()

	stdout := newAddrWriter()
	var stderr bytes.Buffer
	sig := make(chan os.Signal, 1)
	exit := make(chan int, 1)
	go func() {
		exit <- run([]string{"-addr", "127.0.0.1:0", "-faults", "server.eval=panic#1"}, stdout, &stderr, sig)
	}()
	var addr string
	select {
	case addr = <-stdout.addr:
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never reported its address")
	}

	post := func() (int, []byte) {
		resp, err := http.Post("http://"+addr+"/v1/project", "application/json",
			strings.NewReader(`{"target":"power6-575","bench":"BT-MZ","class":"C","ranks":16}`))
		if err != nil {
			t.Fatalf("post: %v", err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, b
	}

	code, body := post()
	if code != http.StatusInternalServerError {
		t.Fatalf("injected panic: status %d (%s), want 500", code, body)
	}
	if !bytes.Contains(body, []byte("panic")) {
		t.Errorf("500 body does not mention the panic: %s", body)
	}

	// The daemon survived: health is green and the retry evaluates.
	resp, err := http.Get("http://" + addr + "/healthz")
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("healthz after panic: %v / %v", err, resp)
	}
	resp.Body.Close()
	if code, body := post(); code != http.StatusOK {
		t.Fatalf("retry after exhausted fault: status %d (%s), want 200", code, body)
	}

	// The armed state was announced at startup.
	if !strings.Contains(stderr.String(), "FAULT INJECTION ARMED") {
		t.Errorf("stderr missing the armed warning: %q", stderr.String())
	}

	sig <- os.Interrupt
	select {
	case code := <-exit:
		if code != 0 {
			t.Errorf("daemon exited %d after surviving a panic, want 0 (stderr: %s)", code, stderr.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never exited")
	}
}
