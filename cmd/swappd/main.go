// Command swappd serves the SWAPP pipeline as a shared projection service:
// an HTTP JSON API over the library with a content-addressed result cache,
// singleflight de-duplication, bounded concurrency with an admission
// queue, per-request deadlines, and graceful drain on SIGTERM/SIGINT.
//
// Usage:
//
//	swappd -addr localhost:8080
//
// Endpoints (see internal/server and DESIGN.md §10):
//
//	POST /v1/project /v1/validate /v1/surrogate /v1/batch /v1/jobs
//	GET  /v1/jobs/{id} /v1/jobs/{id}/events /v1/jobs/{id}/result
//	GET  /healthz /readyz /metrics /metrics.json /debug/pprof/
//
// With -self and -peers set, replicas form a consistent-hash ring and
// forward each (base, target) group to its owning replica (see DESIGN.md
// §13); a dead peer degrades to local computation.
//
// Example:
//
//	curl -s -X POST localhost:8080/v1/project \
//	  -d '{"target":"power6-575","bench":"BT-MZ","class":"C","ranks":64}'
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/faultinject"
	"repro/internal/obs"
	"repro/internal/server"
)

// evalOverride substitutes the evaluation function in tests; nil in
// production.
var evalOverride server.EvalFunc

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr, nil)) }

// run is the daemon body, factored for tests: parse flags, listen, serve
// until a signal arrives on sig (a fresh SIGTERM/SIGINT subscription when
// nil), then drain. It prints the bound address to stdout so callers of
// -addr :0 can find the port.
func run(args []string, stdout, stderr io.Writer, sig <-chan os.Signal) int {
	fs := flag.NewFlagSet("swappd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr        = fs.String("addr", "localhost:8080", "listen address (host:port; :0 picks a free port)")
		workers     = fs.Int("workers", 0, "max concurrent evaluations (0 = GOMAXPROCS)")
		queue       = fs.Int("queue", 0, "admission queue depth beyond running evaluations (0 = 2x workers)")
		cacheSize   = fs.Int("cache", 128, "result cache capacity, in projections")
		timeout     = fs.Duration("timeout", 5*time.Minute, "default per-request deadline")
		maxTimeout  = fs.Duration("max-timeout", 10*time.Minute, "upper bound on client-requested deadlines")
		evalWorkers = fs.Int("eval-workers", 0, "engine worker pool per evaluation (0 = GOMAXPROCS); does not affect the numbers")
		grace       = fs.Duration("grace", 30*time.Second, "drain deadline after SIGTERM/SIGINT")
		traceReqs   = fs.Bool("trace-requests", false, "record a span per evaluation (grows memory on long runs)")
		stageTO     = fs.Duration("stage-timeout", 0, "per-stage evaluation budget, distinct from the request deadline (0 = off)")
		brkThresh   = fs.Int("breaker-threshold", 0, "consecutive failures tripping the circuit breaker (0 = default 5, negative = off)")
		brkCooldown = fs.Duration("breaker-cooldown", 0, "open-circuit rejection window before a probe (0 = default 10s)")
		layered     = fs.Bool("layered-cache", true, "share characterisations, profiles and surrogates across requests (does not affect the numbers)")
		warmStart   = fs.Bool("warm-start", false, "seed GA surrogate searches from the nearest cached surrogate (CAN change the numbers; recorded in the quality block)")
		self        = fs.String("self", "", "this replica's advertised base URL in peer-aware mode (e.g. http://10.0.0.1:8080)")
		peers       = fs.String("peers", "", "comma-separated base URLs of the other replicas; with -self, enables consistent-hash request routing")
		gossip      = fs.Bool("gossip", true, "run SWIM-style health gossip over -peers so the ring follows live membership; false pins the static -peers ring (fallback mode)")
		gossipEvery = fs.Duration("gossip-interval", time.Second, "gossip probe cadence")
		gossipSusp  = fs.Duration("gossip-suspect", 0, "suspicion grace before a peer is declared dead (0 = 3x interval)")
		gossipProbe = fs.Duration("gossip-probe-timeout", 0, "single gossip probe deadline (0 = interval/2)")
		jobsActive  = fs.Int("jobs-active", 0, "max concurrently running async jobs (0 = default 2)")
		jobsQueued  = fs.Int("jobs-queued", 0, "async jobs waiting beyond the running ones (0 = default 4x active)")
		jobsResumes = fs.Int("jobs-resumes", 0, "checkpoint resumes after a failed job attempt (0 = default 1, negative = off)")
		jobsTimeout = fs.Duration("jobs-timeout", 0, "end-to-end async job deadline across resume attempts (0 = default 30m)")
		jobsRetain  = fs.Int("jobs-retain", 0, "finished async jobs kept for polling (0 = default 64)")
		jobsAge     = fs.Duration("jobs-retain-age", 0, "additionally evict finished async jobs older than this (0 = count-based retention only)")
		dataDir     = fs.String("data-dir", "", "durable state directory: WAL job journal + store snapshot; on restart, unfinished jobs resume from their journalled checkpoints (empty = in-memory only)")
		walSync     = fs.Duration("wal-sync", 0, "batch journal fsyncs to at most one per interval (0 = sync every record, the kill -9-safe default)")
		snapOnDrain = fs.Bool("snapshot-on-drain", false, "export the layered store to -data-dir on drain so the next start warms up from disk")
		faults      = fs.String("faults", os.Getenv("SWAPP_FAULTS"),
			"fault-injection spec, e.g. 'server.eval=panic#1' (default $SWAPP_FAULTS; testing only)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if err := faultinject.Arm(*faults); err != nil {
		fmt.Fprintf(stderr, "swappd: %v\n", err)
		return 2
	}
	if faultinject.Enabled() {
		fmt.Fprintf(stderr, "swappd: FAULT INJECTION ARMED at %v — not for production\n", faultinject.Points())
	}

	scope := obs.New("swappd")
	defer scope.End()
	srv, err := server.NewDurable(server.Config{
		Workers:          *workers,
		QueueDepth:       *queue,
		CacheSize:        *cacheSize,
		DefaultTimeout:   *timeout,
		MaxTimeout:       *maxTimeout,
		EvalWorkers:      *evalWorkers,
		Obs:              scope,
		TraceRequests:    *traceReqs,
		StageTimeout:     *stageTO,
		BreakerThreshold: *brkThresh,
		BreakerCooldown:  *brkCooldown,
		Eval:             evalOverride,

		DisableLayeredCache: !*layered,
		WarmStart:           *warmStart,

		Self:               *self,
		Peers:              splitPeers(*peers),
		GossipInterval:     gossipInterval(*gossip, *gossipEvery),
		GossipSuspectAfter: *gossipSusp,
		GossipProbeTimeout: *gossipProbe,

		JobsMaxActive:  *jobsActive,
		JobsMaxQueued:  *jobsQueued,
		JobsMaxResumes: *jobsResumes,
		JobsTimeout:    *jobsTimeout,
		JobsRetain:     *jobsRetain,
		JobsRetainAge:  *jobsAge,

		DataDir:         *dataDir,
		WALSyncEvery:    *walSync,
		SnapshotOnDrain: *snapOnDrain,
	})
	if err != nil {
		fmt.Fprintf(stderr, "swappd: %v\n", err)
		return 1
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(stderr, "swappd: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "swappd listening on %s\n", ln.Addr())

	hs := newHTTPServer(srv.Handler())
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	if sig == nil {
		ch := make(chan os.Signal, 1)
		signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
		defer signal.Stop(ch)
		sig = ch
	}

	select {
	case err := <-serveErr:
		fmt.Fprintf(stderr, "swappd: serve: %v\n", err)
		return 1
	case <-sig:
	}

	// Drain: flip readiness so load balancers stop routing here, hand
	// unfinished async jobs (with their checkpoint seeds) to their groups'
	// new ring owners, stop gossip and submissions, then let in-flight
	// requests finish under the grace deadline.
	fmt.Fprintln(stderr, "swappd: signal received, draining")
	srv.SetDraining(true)
	ctx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	if n := srv.Handoff(ctx); n > 0 {
		fmt.Fprintf(stderr, "swappd: handed off %d job(s)\n", n)
	}
	if *snapOnDrain {
		if err := srv.SaveSnapshot(); err != nil {
			fmt.Fprintf(stderr, "swappd: %v\n", err)
		}
	}
	srv.Close()
	if err := hs.Shutdown(ctx); err != nil {
		fmt.Fprintf(stderr, "swappd: drain incomplete: %v\n", err)
		return 1
	}
	fmt.Fprintln(stderr, "swappd: drained")
	return 0
}

// gossipInterval resolves the -gossip / -gossip-interval pair: zero (static
// membership) unless gossip mode is on.
func gossipInterval(enabled bool, every time.Duration) time.Duration {
	if !enabled {
		return 0
	}
	return every
}

// splitPeers parses the comma-separated -peers list, dropping empties so a
// trailing comma is harmless.
func splitPeers(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// newHTTPServer hardens the listener against slow or hostile clients: a
// stalled request line, drip-fed body, or oversized header set cannot pin
// a connection goroutine forever. WriteTimeout stays unset on purpose —
// evaluations legitimately take minutes and the per-request deadline
// already bounds them.
func newHTTPServer(h http.Handler) *http.Server {
	return &http.Server{
		Handler:           h,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       time.Minute,
		IdleTimeout:       2 * time.Minute,
		MaxHeaderBytes:    1 << 20,
	}
}
