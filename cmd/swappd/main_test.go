package main

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	swapp "repro"
	"repro/internal/core"
	"repro/internal/mpi"
	"repro/internal/server"
)

// addrWriter captures run's stdout and signals once the "listening on"
// line arrives, carrying the bound address.
type addrWriter struct {
	mu   sync.Mutex
	buf  bytes.Buffer
	addr chan string
	sent bool
}

func newAddrWriter() *addrWriter { return &addrWriter{addr: make(chan string, 1)} }

func (w *addrWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.buf.Write(p)
	if !w.sent {
		if s := w.buf.String(); strings.Contains(s, "listening on ") {
			line := s[strings.Index(s, "listening on ")+len("listening on "):]
			if i := strings.IndexByte(line, '\n'); i >= 0 {
				w.sent = true
				w.addr <- strings.TrimSpace(line[:i])
			}
		}
	}
	return len(p), nil
}

// stubEval is a blocking evaluation stub: it parks until release closes
// (or the request dies), so the drain test has real in-flight work.
func stubEval(started *atomic.Int64, release <-chan struct{}) server.EvalFunc {
	return func(ctx context.Context, op string, req swapp.Request) (*swapp.Result, error) {
		started.Add(1)
		select {
		case <-release:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		comm := &core.CommProjection{Ranks: req.Ranks, WaitScale: 1,
			Routines: []*core.RoutineProjection{{Routine: mpi.RoutineBcast, Class: mpi.ClassCollective,
				Calls: 1, BaseElapsed: 1, BaseTransfer: 1, TargetTransfer: 0.5}}}
		proj := &core.Projection{App: "stub", Target: req.Target, Ck: req.Ranks,
			Compute: &core.ComputeProjection{BaseTime: 2, TargetTime: 1},
			Gamma:   1, ComputeTime: 1, Comm: comm, CommTime: comm.TargetTotal(), Total: 1 + comm.TargetTotal()}
		return &swapp.Result{Request: req, Projection: proj}, nil
	}
}

// TestSigtermDrainsInflight proves the shutdown contract: a SIGTERM
// arriving while an evaluation runs lets that request finish with 200,
// then the daemon exits 0.
func TestSigtermDrainsInflight(t *testing.T) {
	var started atomic.Int64
	release := make(chan struct{})
	evalOverride = stubEval(&started, release)
	defer func() { evalOverride = nil }()

	stdout := newAddrWriter()
	var stderr bytes.Buffer
	sig := make(chan os.Signal, 1)
	exit := make(chan int, 1)
	go func() {
		exit <- run([]string{"-addr", "127.0.0.1:0", "-workers", "2", "-grace", "30s"}, stdout, &stderr, sig)
	}()
	var addr string
	select {
	case addr = <-stdout.addr:
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never reported its address")
	}

	// Health first, then park one projection in the evaluator.
	resp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}
	type reqResult struct {
		code int
		body []byte
	}
	inflight := make(chan reqResult, 1)
	go func() {
		resp, err := http.Post("http://"+addr+"/v1/project", "application/json",
			strings.NewReader(`{"target":"power6-575","bench":"BT-MZ","class":"C","ranks":16}`))
		if err != nil {
			inflight <- reqResult{code: -1}
			return
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		inflight <- reqResult{code: resp.StatusCode, body: b}
	}()
	deadline := time.Now().Add(10 * time.Second)
	for started.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if started.Load() == 0 {
		t.Fatal("evaluation never started")
	}

	// SIGTERM with the evaluation still parked: the daemon must wait.
	sig <- os.Interrupt
	select {
	case code := <-exit:
		t.Fatalf("daemon exited %d before the in-flight request finished", code)
	case <-time.After(200 * time.Millisecond):
	}

	close(release)
	select {
	case r := <-inflight:
		if r.code != 200 {
			t.Errorf("in-flight request finished with %d (%s), want 200", r.code, r.body)
		}
		if !bytes.Contains(r.body, []byte(`"total_seconds"`)) {
			t.Errorf("drained response is not a projection: %s", r.body)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("in-flight request never completed")
	}
	select {
	case code := <-exit:
		if code != 0 {
			t.Errorf("drained daemon exited %d, want 0 (stderr: %s)", code, stderr.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never exited after drain")
	}
	if !strings.Contains(stderr.String(), "drained") {
		t.Errorf("stderr missing drain log: %q", stderr.String())
	}
}

// TestBadFlags pins the usage exit code.
func TestBadFlags(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-nope"}, &out, &errOut, nil); code != 2 {
		t.Errorf("bad flag: exit %d, want 2", code)
	}
}

// TestListenFailure pins the error path for an unusable address.
func TestListenFailure(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-addr", "256.256.256.256:1"}, &out, &errOut, nil); code != 1 {
		t.Errorf("bad address: exit %d, want 1 (stderr %q)", code, errOut.String())
	}
}
