// benchstatgate gates `go test -bench` microbenchmark output against a
// committed JSON baseline, the way scripts/bench_gate.sh gates swappbench
// scenarios against BENCH_swappd.json:
//
//	go test -run '^$' -bench 'Kernel|ScoreAll' -benchmem ./... > run.txt
//	benchstatgate -baseline BENCH_kernel.json run.txt            # gate
//	benchstatgate -baseline BENCH_kernel.json -update run.txt    # rebaseline
//
// allocs/op is gated on every host: the allocation count of a
// deterministic benchmark is hardware-independent, so any regression
// beyond -max-regress percent (or any alloc on a zero-alloc baseline)
// fails. ns/op is gated only when the baseline was recorded on comparable
// hardware (same CPU count and GOMAXPROCS) — mirroring swappbench's
// cross-host latency rule. A benchmark present in the run but missing
// from the baseline warns and passes, so a new benchmark never breaks CI
// before its first baseline commit; a baseline entry missing from the run
// warns too, so silently dropped coverage is visible.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"sort"
	"strconv"
)

// Metrics is one benchmark's gated numbers.
type Metrics struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// Host pins the hardware a baseline was recorded on; ns/op comparisons
// are skipped when it differs.
type Host struct {
	NumCPU     int `json:"num_cpu"`
	GOMAXPROCS int `json:"gomaxprocs"`
}

// Baseline is the committed file format.
type Baseline struct {
	Description string             `json:"description"`
	Host        Host               `json:"host"`
	Benchmarks  map[string]Metrics `json:"benchmarks"`
}

// benchLine matches one -benchmem result row, e.g.
//
//	BenchmarkScoreAll/hit-8   50244   4880 ns/op   0 B/op   0 allocs/op
//
// The trailing -N GOMAXPROCS suffix is stripped from the name so baselines
// compare across machines.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op(?:\s+[0-9.]+ [A-Za-z]+/op)*?\s+([0-9.]+) B/op\s+([0-9.]+) allocs/op`)

// parseRun reads -benchmem output. Repeated results for one benchmark
// (go test -count=N) collapse to the per-metric minimum: the fastest of N
// runs is the lowest-noise estimator of a benchmark's true cost on a
// shared box, so both gating runs and baselines should use -count >= 3.
func parseRun(path string) (map[string]Metrics, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := map[string]Metrics{}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		ns, _ := strconv.ParseFloat(m[2], 64)
		allocs, _ := strconv.ParseFloat(m[4], 64)
		got := Metrics{NsPerOp: ns, AllocsPerOp: allocs}
		if prev, ok := out[m[1]]; ok {
			if prev.NsPerOp < got.NsPerOp {
				got.NsPerOp = prev.NsPerOp
			}
			if prev.AllocsPerOp < got.AllocsPerOp {
				got.AllocsPerOp = prev.AllocsPerOp
			}
		}
		out[m[1]] = got
	}
	return out, sc.Err()
}

// regress returns the percentage increase of got over base (0 when base
// is 0 and got is too; +Inf when only base is 0).
func regress(base, got float64) float64 {
	if base == 0 {
		if got == 0 {
			return 0
		}
		return inf
	}
	return (got - base) / base * 100
}

const inf = 1e308

func main() {
	baselinePath := flag.String("baseline", "BENCH_kernel.json", "committed baseline JSON")
	maxRegress := flag.Float64("max-regress", 20, "max tolerated regression in percent")
	update := flag.Bool("update", false, "rewrite the baseline from the run instead of gating")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: benchstatgate [-baseline file] [-max-regress pct] [-update] <go-test-bench-output>")
		os.Exit(2)
	}
	run, err := parseRun(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	if len(run) == 0 {
		fatal(fmt.Errorf("no benchmark result lines in %s (was -benchmem set?)", flag.Arg(0)))
	}

	if *update {
		b := Baseline{
			Description: "kernel microbenchmark baseline: ns/op and allocs/op for the GA evaluation hot path (EvalKernel objective, evaluator scoreAll), gated by scripts/bench_gate.sh via cmd/benchstatgate. allocs/op gates on every host; ns/op only on matching hardware. Regenerate with: make bench-kernel-baseline",
			Host:        Host{NumCPU: runtime.NumCPU(), GOMAXPROCS: runtime.GOMAXPROCS(0)},
			Benchmarks:  run,
		}
		data, err := json.MarshalIndent(b, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*baselinePath, append(data, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("benchstatgate: baseline %s rewritten (%d benchmarks)\n", *baselinePath, len(run))
		return
	}

	data, err := os.ReadFile(*baselinePath)
	if err != nil {
		fatal(err)
	}
	var base Baseline
	if err := json.Unmarshal(data, &base); err != nil {
		fatal(fmt.Errorf("parse %s: %w", *baselinePath, err))
	}
	sameHost := base.Host.NumCPU == runtime.NumCPU() && base.Host.GOMAXPROCS == runtime.GOMAXPROCS(0)
	if !sameHost {
		fmt.Printf("benchstatgate: host differs from baseline (cpu %d/%d, gomaxprocs %d/%d): ns/op gates skipped\n",
			runtime.NumCPU(), base.Host.NumCPU, runtime.GOMAXPROCS(0), base.Host.GOMAXPROCS)
	}

	names := make([]string, 0, len(run))
	for name := range run {
		names = append(names, name)
	}
	sort.Strings(names)
	failed := 0
	for _, name := range names {
		got := run[name]
		want, ok := base.Benchmarks[name]
		if !ok {
			fmt.Printf("benchstatgate: %s: not in baseline, skipped (commit a rebaselined %s to gate it)\n", name, *baselinePath)
			continue
		}
		if r := regress(want.AllocsPerOp, got.AllocsPerOp); r > *maxRegress {
			fmt.Printf("benchstatgate: FAIL %s allocs/op %.1f vs baseline %.1f (+%.0f%% > %.0f%%)\n",
				name, got.AllocsPerOp, want.AllocsPerOp, r, *maxRegress)
			failed++
		} else {
			fmt.Printf("benchstatgate: ok   %s allocs/op %.1f (baseline %.1f)\n", name, got.AllocsPerOp, want.AllocsPerOp)
		}
		if sameHost {
			if r := regress(want.NsPerOp, got.NsPerOp); r > *maxRegress {
				fmt.Printf("benchstatgate: FAIL %s ns/op %.1f vs baseline %.1f (+%.0f%% > %.0f%%)\n",
					name, got.NsPerOp, want.NsPerOp, r, *maxRegress)
				failed++
			} else {
				fmt.Printf("benchstatgate: ok   %s ns/op %.1f (baseline %.1f)\n", name, got.NsPerOp, want.NsPerOp)
			}
		}
	}
	for name := range base.Benchmarks {
		if _, ok := run[name]; !ok {
			fmt.Printf("benchstatgate: warning: baseline benchmark %s missing from this run\n", name)
		}
	}
	if failed > 0 {
		fatal(fmt.Errorf("%d benchmark gate(s) failed", failed))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchstatgate:", err)
	os.Exit(1)
}
