// Command swappbench is the serving-layer load generator and benchmark
// harness for swappd: it drives the projection service with configurable
// concurrency and a mix of request distributions — cache-cold, shared-base
// warm, cache-hot, degraded-input — and reports per-scenario latency
// percentiles (p50/p95/p99), saturation throughput, allocations per
// request, and resident set size into a versioned BENCH_swappd.json.
//
// Modelled on golang/benchmarks' driver/http harness: the default mode
// hosts the server in-process on a loopback listener (so allocation and
// RSS deltas come straight from runtime.MemStats), while -addr points the
// generator at an externally running swappd, in which case server-side
// memory statistics are scraped from its /debug/vars endpoint.
//
// Usage:
//
//	swappbench                        # full run, JSON to stdout
//	swappbench -out BENCH_swappd.json # write the versioned baseline
//	swappbench -gate BENCH_swappd.json -max-regress 20
//	                                  # regression gate against a committed baseline
//
// Scenarios (fresh server per scenario in in-process mode):
//
//	cache-cold        distinct (bench, target) requests, no artifact reuse —
//	                  every request pays the full pipeline
//	shared-base-warm  requests sharing (app, base, target) but differing in
//	                  ranks — the layered-cache sweet spot
//	cache-hot         one request repeated — the result-cache hit path
//	degraded-input    requests against fault-injected benchmark data —
//	                  the lenient/quality path
//	multi-replica-batch  3 peer-wired in-process replicas; each measured op
//	                  is one /v1/batch whose groups hash across the ring
//	cluster-scaling-{2,4,8}  the same grouped batch measured at 2, 4 and 8
//	                  peer-wired replicas — the ring-size scaling curve
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/faultinject"
	"repro/internal/obs"
	"repro/internal/server"
)

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

// apiReq is one request in a scenario's distribution.
type apiReq struct {
	Target string `json:"target"`
	Bench  string `json:"bench"`
	Class  string `json:"class"`
	Ranks  int    `json:"ranks"`
}

func (r apiReq) body() string {
	return fmt.Sprintf(`{"target":%q,"bench":%q,"class":%q,"ranks":%d}`,
		r.Target, r.Bench, r.Class, r.Ranks)
}

// scenario is one request distribution plus the server mode it needs.
type scenario struct {
	name     string
	note     string
	prime    []apiReq // served before measurement starts (not timed)
	reqs     []apiReq // measured, in order (never cycled: repeats would hit the result cache)
	repeat   apiReq   // when set, measured -n repetitions of one request
	n        int      // measured request count for repeat-mode scenarios
	faults   string   // faultinject spec armed for the scenario (in-process only)
	noStore  bool     // disable the layered artifact store (cache-cold baseline)
	replicas int      // when >1, host this many peer-wired replicas (in-process only)
	batch    []apiReq // when set, each measured op is one /v1/batch of these requests
}

// scenarioResult is the measured outcome, serialised into BENCH_swappd.json.
type scenarioResult struct {
	Name          string  `json:"name"`
	Note          string  `json:"note,omitempty"`
	Requests      int     `json:"requests"`
	Errors        int     `json:"errors"`
	Concurrency   int     `json:"concurrency"`
	P50Ms         float64 `json:"p50_ms"`
	P95Ms         float64 `json:"p95_ms"`
	P99Ms         float64 `json:"p99_ms"`
	ThroughputRPS float64 `json:"throughput_rps"`
	AllocsPerOp   float64 `json:"allocs_per_op"`
	BytesPerOp    float64 `json:"bytes_per_op"`
	RSSMB         float64 `json:"rss_mb,omitempty"`
	MemSysMB      float64 `json:"mem_sys_mb"`
}

type environment struct {
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	CPUs       int    `json:"cpus"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	Go         string `json:"go"`
}

type runConfig struct {
	Concurrency int    `json:"concurrency"`
	Cold        int    `json:"cold"`
	Warm        int    `json:"warm"`
	Hot         int    `json:"hot"`
	Degraded    int    `json:"degraded"`
	Multi       int    `json:"multi,omitempty"`
	Scaling     int    `json:"scaling,omitempty"`
	Mode        string `json:"mode"` // "in-process" or the external address
}

// comparison derives the headline claims from one run (and optionally a
// baseline): the shared-base-warm speedup over cache-cold, and the
// serving-path allocation change against the pre-layered-cache harness run.
type comparison struct {
	ColdP50OverWarmP50 float64            `json:"cold_p50_over_warm_p50,omitempty"`
	AllocsChangePct    map[string]float64 `json:"allocs_per_op_change_pct_vs_baseline,omitempty"`
	P50ChangePct       map[string]float64 `json:"p50_change_pct_vs_baseline,omitempty"`
}

type baselineBlock struct {
	Note        string           `json:"note"`
	Environment environment      `json:"environment"`
	Scenarios   []scenarioResult `json:"scenarios"`
}

// benchFile is the versioned BENCH_swappd.json document.
type benchFile struct {
	Version     int              `json:"version"`
	Description string           `json:"description"`
	Environment environment      `json:"environment"`
	Config      runConfig        `json:"config"`
	Scenarios   []scenarioResult `json:"scenarios"`
	Comparison  *comparison      `json:"comparison,omitempty"`
	Baseline    *baselineBlock   `json:"baseline,omitempty"`
	// Notes carries free-form context attached at run time (-note), e.g.
	// companion external-mode measurements that don't fit the scenario
	// schema.
	Notes []string `json:"notes,omitempty"`
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("swappbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr       = fs.String("addr", "", "drive an external swappd at this address instead of hosting in-process")
		conc       = fs.Int("c", 4, "client concurrency")
		cold       = fs.Int("cold", 5, "cache-cold requests (0 disables the scenario, max 9 distinct)")
		warm       = fs.Int("warm", 10, "shared-base-warm requests (0 disables, max 10 distinct)")
		hot        = fs.Int("hot", 200, "cache-hot requests (0 disables)")
		degraded   = fs.Int("degraded", 3, "degraded-input requests (0 disables, max 3 distinct; in-process only)")
		multi      = fs.Int("multi", 8, "multi-replica /v1/batch round-trips across 3 peer-wired replicas (0 disables; in-process only)")
		scaling    = fs.Int("scaling", 0, "cluster-scaling /v1/batch round-trips, measured at 2, 4 and 8 peer-wired replicas (0 disables; in-process only)")
		cacheSize  = fs.Int("cache", 128, "server result-cache capacity (in-process mode)")
		evalW      = fs.Int("eval-workers", 0, "engine pool per evaluation (in-process mode)")
		timeout    = fs.Duration("timeout", 5*time.Minute, "per-request client timeout")
		out        = fs.String("out", "-", "write the JSON report here (- = stdout)")
		mergeBase  = fs.String("merge-baseline", "", "embed this prior run's scenarios as the baseline block and compute deltas")
		gate       = fs.String("gate", "", "compare this run against a committed BENCH_swappd.json and fail on regression")
		gateStrict = fs.Bool("gate-strict", false, "with -gate, also fail when this run covers fewer scenarios than the baseline (CI coverage guard)")
		maxRegr    = fs.Float64("max-regress", 20, "max tolerated allocs-per-op regression, percent (-gate)")
		maxLatRegr = fs.Float64("max-latency-regress", 50, "max tolerated p50 latency regression, percent (-gate); looser than -max-regress because wall-clock on a time-shared host swings tens of percent run to run while allocs/op is near-deterministic")
		cpuProf    = fs.String("cpuprofile", "", "write a per-scenario CPU profile to <prefix>.<scenario>.pb.gz (in-process mode)")
		memProf    = fs.String("memprofile", "", "write a per-scenario allocation profile to <prefix>.<scenario>.pb.gz (in-process mode)")
	)
	var notes []string
	fs.Func("note", "attach a free-form note to the report (repeatable)", func(v string) error {
		notes = append(notes, v)
		return nil
	})
	if err := fs.Parse(args); err != nil {
		return 2
	}

	scenarios := buildScenarios(*cold, *warm, *hot, *degraded, *multi, *scaling, *addr != "")
	if len(scenarios) == 0 {
		fmt.Fprintln(stderr, "swappbench: all scenarios disabled")
		return 2
	}

	doc := &benchFile{
		Version: 1,
		Description: "swappd serving-layer baseline: per-scenario latency percentiles, " +
			"saturation throughput, allocations per request and memory, measured by cmd/swappbench " +
			"(in-process loopback server unless config.mode names an external address). " +
			"allocs_per_op counts process-wide Mallocs per measured request and, in in-process mode, " +
			"includes the load generator's own client-side allocations — comparable across runs of the " +
			"same harness, not against external-mode runs.",
		Environment: environment{
			GOOS: runtime.GOOS, GOARCH: runtime.GOARCH,
			CPUs: runtime.NumCPU(), GOMAXPROCS: runtime.GOMAXPROCS(0),
			Go: runtime.Version(),
		},
		Config: runConfig{
			Concurrency: *conc, Cold: *cold, Warm: *warm, Hot: *hot, Degraded: *degraded,
			Multi: *multi, Scaling: *scaling,
			Mode: modeName(*addr),
		},
		Notes: notes,
	}

	if (*cpuProf != "" || *memProf != "") && *addr != "" {
		fmt.Fprintln(stderr, "swappbench: -cpuprofile/-memprofile profile this process; they are only meaningful in in-process mode")
		return 2
	}
	prof := profileConfig{cpuPrefix: *cpuProf, memPrefix: *memProf}

	for _, sc := range scenarios {
		fmt.Fprintf(stderr, "swappbench: scenario %s (%d requests, c=%d)\n", sc.name, measuredCount(sc), *conc)
		res, err := runScenario(sc, *addr, *conc, *cacheSize, *evalW, *timeout, prof)
		if err != nil {
			fmt.Fprintf(stderr, "swappbench: scenario %s: %v\n", sc.name, err)
			return 1
		}
		doc.Scenarios = append(doc.Scenarios, *res)
	}
	doc.Comparison = compare(doc.Scenarios, nil)

	if *mergeBase != "" {
		prior, err := loadBench(*mergeBase)
		if err != nil {
			fmt.Fprintf(stderr, "swappbench: -merge-baseline: %v\n", err)
			return 1
		}
		doc.Baseline = &baselineBlock{
			Note: "pre-layered-cache run of the same harness (monolithic result cache only), " +
				"kept as the comparison point for the allocs/op and latency deltas below",
			Environment: prior.Environment,
			Scenarios:   prior.Scenarios,
		}
		doc.Comparison = compare(doc.Scenarios, prior.Scenarios)
	}

	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintf(stderr, "swappbench: %v\n", err)
		return 1
	}
	b = append(b, '\n')
	if *out == "-" {
		_, _ = stdout.Write(b)
	} else if err := os.WriteFile(*out, b, 0o644); err != nil {
		fmt.Fprintf(stderr, "swappbench: %v\n", err)
		return 1
	}

	if *gate != "" {
		committed, err := loadBench(*gate)
		if err != nil {
			fmt.Fprintf(stderr, "swappbench: -gate: %v\n", err)
			return 1
		}
		if !gateCheck(stderr, doc, committed, *maxRegr, *maxLatRegr, *gateStrict) {
			return 1
		}
		fmt.Fprintln(stderr, "swappbench: gate passed")
	}
	return 0
}

func modeName(addr string) string {
	if addr == "" {
		return "in-process"
	}
	return addr
}

func measuredCount(sc scenario) int {
	if sc.n > 0 {
		return sc.n
	}
	return len(sc.reqs)
}

// scalingBatch is the fixed workload of the cluster-scaling scenarios: six
// requests spanning three ring groups, identical at every replica count so
// the only variable across cluster-scaling-2/4/8 is the ring size itself.
var scalingBatch = []apiReq{
	{Target: "bgp", Bench: "BT-MZ", Class: "C", Ranks: 16},
	{Target: "bgp", Bench: "SP-MZ", Class: "C", Ranks: 16},
	{Target: "power6-575", Bench: "BT-MZ", Class: "C", Ranks: 16},
	{Target: "power6-575", Bench: "BT-MZ", Class: "C", Ranks: 32},
	{Target: "westmere-x5670", Bench: "LU-MZ", Class: "C", Ranks: 16},
	{Target: "westmere-x5670", Bench: "SP-MZ", Class: "C", Ranks: 32},
}

// buildScenarios assembles the distributions, truncated to the requested
// sizes. Unique-request scenarios are never cycled: a repeated request
// would hit the result cache and stop measuring what the scenario claims
// to.
func buildScenarios(cold, warm, hot, degraded, multi, scaling int, external bool) []scenario {
	var out []scenario
	if cold > 0 {
		reqs := []apiReq{
			{Target: "bgp", Bench: "BT-MZ", Class: "C", Ranks: 16},
			{Target: "power6-575", Bench: "SP-MZ", Class: "C", Ranks: 16},
			{Target: "westmere-x5670", Bench: "LU-MZ", Class: "C", Ranks: 16},
			{Target: "westmere-x5670", Bench: "BT-MZ", Class: "C", Ranks: 16},
			{Target: "bgp", Bench: "SP-MZ", Class: "C", Ranks: 16},
			{Target: "power6-575", Bench: "LU-MZ", Class: "C", Ranks: 16},
			{Target: "power6-575", Bench: "BT-MZ", Class: "C", Ranks: 32},
			{Target: "bgp", Bench: "LU-MZ", Class: "C", Ranks: 16},
			{Target: "westmere-x5670", Bench: "SP-MZ", Class: "C", Ranks: 32},
		}
		out = append(out, scenario{
			name:    "cache-cold",
			note:    "distinct requests, layered store disabled: every request pays the full pipeline",
			reqs:    reqs[:min(cold, len(reqs))],
			noStore: true,
		})
	}
	if warm > 0 {
		var reqs []apiReq
		for _, r := range []int{32, 64, 128, 4, 8, 12, 20, 24, 40, 48} {
			reqs = append(reqs, apiReq{Target: "power6-575", Bench: "BT-MZ", Class: "C", Ranks: r})
		}
		out = append(out, scenario{
			name:  "shared-base-warm",
			note:  "requests sharing (app, base, target) with the primed one, differing only in ranks",
			prime: []apiReq{{Target: "power6-575", Bench: "BT-MZ", Class: "C", Ranks: 16}},
			reqs:  reqs[:min(warm, len(reqs))],
		})
	}
	if hot > 0 {
		out = append(out, scenario{
			name:   "cache-hot",
			note:   "one request repeated: the result-cache hit path",
			prime:  []apiReq{{Target: "power6-575", Bench: "BT-MZ", Class: "C", Ranks: 16}},
			repeat: apiReq{Target: "power6-575", Bench: "BT-MZ", Class: "C", Ranks: 16},
			n:      hot,
		})
	}
	if multi > 0 && !external {
		// Six requests hashing to three (base, target) ring groups, so every
		// batch exercises grouping plus peer forwarding. One untimed batch
		// primes the owners; the measured round-trips are then hot at every
		// replica and isolate the routing overhead itself.
		batch := []apiReq{
			{Target: "bgp", Bench: "BT-MZ", Class: "C", Ranks: 16},
			{Target: "bgp", Bench: "SP-MZ", Class: "C", Ranks: 16},
			{Target: "power6-575", Bench: "BT-MZ", Class: "C", Ranks: 16},
			{Target: "power6-575", Bench: "BT-MZ", Class: "C", Ranks: 32},
			{Target: "westmere-x5670", Bench: "LU-MZ", Class: "C", Ranks: 16},
			{Target: "westmere-x5670", Bench: "SP-MZ", Class: "C", Ranks: 32},
		}
		out = append(out, scenario{
			name: "multi-replica-batch",
			note: "3 peer-wired replicas; each measured op is one /v1/batch of 6 requests " +
				"spanning 3 ring groups, owners primed: grouping + forwarding overhead on the hot path",
			replicas: 3,
			batch:    batch,
			n:        multi,
		})
	}
	if scaling > 0 && !external {
		// The same primed batch at 2, 4 and 8 replicas: the workload and group
		// count are fixed, so latency differences across the three scenarios
		// are attributable to ring size (more forwarding hops land off-node as
		// membership grows, while per-owner work shrinks).
		for _, replicas := range []int{2, 4, 8} {
			out = append(out, scenario{
				name: fmt.Sprintf("cluster-scaling-%d", replicas),
				note: fmt.Sprintf("%d peer-wired replicas; each measured op is one /v1/batch of 6 requests "+
					"spanning 3 ring groups, owners primed: routing overhead as the ring grows", replicas),
				replicas: replicas,
				batch:    scalingBatch,
				n:        scaling,
			})
		}
	}
	if degraded > 0 && !external {
		reqs := []apiReq{
			{Target: "bgp", Bench: "SP-MZ", Class: "C", Ranks: 16},
			{Target: "power6-575", Bench: "LU-MZ", Class: "C", Ranks: 16},
			{Target: "power6-575", Bench: "BT-MZ", Class: "C", Ranks: 24},
		}
		out = append(out, scenario{
			name:   "degraded-input",
			note:   "benchmark data fault-injected (core.spec.target=drop): the lenient/quality path",
			reqs:   reqs[:min(degraded, len(reqs))],
			faults: "core.spec.target=drop",
		})
	}
	return out
}

// profileConfig names the per-scenario pprof outputs: when a prefix is set,
// the measured window of each scenario is profiled to
// <prefix>.<scenario>.pb.gz, so a kernel win (or a future regression) is
// attributable to the functions that moved. CPU profiles cover exactly the
// measured requests; allocation profiles are the runtime's cumulative
// alloc_space profile written at scenario end, so for exact attribution run
// one scenario at a time (e.g. -cold 5 -warm 0 -hot 0 -degraded 0 -multi 0).
type profileConfig struct {
	cpuPrefix string
	memPrefix string
}

// start begins the CPU profile for one scenario's measured window.
func (p profileConfig) start(name string) (stop func() error, err error) {
	if p.cpuPrefix == "" {
		return func() error { return nil }, nil
	}
	f, err := os.Create(p.cpuPrefix + "." + name + ".pb.gz")
	if err != nil {
		return nil, err
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, err
	}
	return func() error {
		pprof.StopCPUProfile()
		return f.Close()
	}, nil
}

// heap writes the allocation profile at the end of one scenario.
func (p profileConfig) heap(name string) error {
	if p.memPrefix == "" {
		return nil
	}
	f, err := os.Create(p.memPrefix + "." + name + ".pb.gz")
	if err != nil {
		return err
	}
	defer f.Close()
	runtime.GC() // flush the final allocation records
	return pprof.Lookup("allocs").WriteTo(f, 0)
}

// runScenario measures one scenario: fresh in-process server (or the
// external address), prime requests untimed, then the measured set on a
// bounded worker pool.
func runScenario(sc scenario, addr string, conc, cacheSize, evalWorkers int, timeout time.Duration, prof profileConfig) (*scenarioResult, error) {
	base := addr
	var shutdown, quiesce func()
	if base == "" {
		var err error
		if sc.replicas > 1 {
			base, shutdown, quiesce, err = startReplicas(sc, cacheSize, evalWorkers)
		} else {
			base, shutdown, err = startServer(sc, cacheSize, evalWorkers)
		}
		if err != nil {
			return nil, err
		}
		defer shutdown()
	}
	if sc.faults != "" && addr == "" {
		if err := faultinject.Arm(sc.faults); err != nil {
			return nil, err
		}
		defer faultinject.Disarm()
	}
	client := &http.Client{Timeout: timeout}
	url := "http://" + strings.TrimPrefix(base, "http://") + "/v1/project"
	payload := func(r apiReq) string { return r.body() }
	if len(sc.batch) > 0 {
		url = "http://" + strings.TrimPrefix(base, "http://") + "/v1/batch"
		items := make([]string, len(sc.batch))
		for i, r := range sc.batch {
			items[i] = r.body()
		}
		body := `{"requests":[` + strings.Join(items, ",") + `]}`
		payload = func(apiReq) string { return body }
	}

	do := func(r apiReq) (time.Duration, error) {
		t0 := time.Now()
		resp, err := client.Post(url, "application/json", strings.NewReader(payload(r)))
		if err != nil {
			return 0, err
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		d := time.Since(t0)
		if resp.StatusCode != http.StatusOK {
			return 0, fmt.Errorf("%s: status %d: %s", payload(r), resp.StatusCode, firstLine(body))
		}
		if len(sc.batch) > 0 {
			if err := checkBatch(body, len(sc.batch)); err != nil {
				return 0, err
			}
		}
		return d, nil
	}

	for _, r := range sc.prime {
		if _, err := do(r); err != nil {
			return nil, fmt.Errorf("prime: %w", err)
		}
	}
	if len(sc.batch) > 0 {
		// One untimed batch pays the pipeline cost of filling every group's
		// owner; the measured round-trips below then isolate routing.
		if _, err := do(apiReq{}); err != nil {
			return nil, fmt.Errorf("prime: %w", err)
		}
	}
	if quiesce != nil {
		// The prime phase's fresh computes fire asynchronous replication
		// pushes between the replicas; join them before measuring, or their
		// allocations land nondeterministically inside the measured window.
		quiesce()
	}

	reqs := sc.reqs
	if sc.n > 0 {
		reqs = make([]apiReq, sc.n)
		for i := range reqs {
			reqs[i] = sc.repeat
		}
	}

	pre, err := memSnapshot(addr, base)
	if err != nil {
		return nil, err
	}
	stopCPU, err := prof.start(sc.name)
	if err != nil {
		return nil, err
	}
	lat := make([]time.Duration, len(reqs))
	errs := make([]error, len(reqs))
	jobs := make(chan int)
	var wg sync.WaitGroup
	if conc < 1 {
		conc = 1
	}
	t0 := time.Now()
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				lat[i], errs[i] = do(reqs[i])
			}
		}()
	}
	for i := range reqs {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	wall := time.Since(t0)
	if err := stopCPU(); err != nil {
		return nil, err
	}
	post, err := memSnapshot(addr, base)
	if err != nil {
		return nil, err
	}
	if err := prof.heap(sc.name); err != nil {
		return nil, err
	}

	var ok []time.Duration
	nerr := 0
	for i, e := range errs {
		if e != nil {
			nerr++
			continue
		}
		ok = append(ok, lat[i])
	}
	if len(ok) == 0 {
		return nil, fmt.Errorf("all %d requests failed; first: %v", len(errs), firstErr(errs))
	}
	sort.Slice(ok, func(a, b int) bool { return ok[a] < ok[b] })

	res := &scenarioResult{
		Name:          sc.name,
		Note:          sc.note,
		Requests:      len(reqs),
		Errors:        nerr,
		Concurrency:   conc,
		P50Ms:         ms(percentile(ok, 0.50)),
		P95Ms:         ms(percentile(ok, 0.95)),
		P99Ms:         ms(percentile(ok, 0.99)),
		ThroughputRPS: round3(float64(len(ok)) / wall.Seconds()),
		AllocsPerOp:   round1(float64(post.mallocs-pre.mallocs) / float64(len(reqs))),
		BytesPerOp:    round1(float64(post.totalAlloc-pre.totalAlloc) / float64(len(reqs))),
		MemSysMB:      round1(float64(post.sys) / (1 << 20)),
	}
	if rss := procRSS(); rss > 0 && addr == "" {
		res.RSSMB = round1(float64(rss) / (1 << 20))
	}
	return res, nil
}

// startServer hosts a fresh projection server on a loopback listener for
// one scenario, returning its address and a shutdown function.
func startServer(sc scenario, cacheSize, evalWorkers int) (string, func(), error) {
	scope := obs.New("swappbench")
	srv := server.New(server.Config{
		CacheSize:   cacheSize,
		EvalWorkers: evalWorkers,
		Obs:         scope,

		DisableLayeredCache: sc.noStore,
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go func() { _ = hs.Serve(ln) }()
	stop := func() {
		_ = hs.Close()
		scope.End()
	}
	return ln.Addr().String(), stop, nil
}

// startReplicas hosts sc.replicas peer-wired projection servers on loopback
// listeners — the consistent-hash ring of DESIGN.md §13 — and returns the
// first replica's address: the load generator drives one node and lets the
// ring fan the groups out. Listeners are bound before any server is
// constructed so every replica knows the full peer list up front.
func startReplicas(sc scenario, cacheSize, evalWorkers int) (string, func(), func(), error) {
	n := sc.replicas
	lns := make([]net.Listener, n)
	urls := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			for _, l := range lns[:i] {
				_ = l.Close()
			}
			return "", nil, nil, err
		}
		lns[i] = ln
		urls[i] = "http://" + ln.Addr().String()
	}
	servers := make([]*http.Server, n)
	srvs := make([]*server.Server, n)
	scopes := make([]*obs.Scope, n)
	for i := range servers {
		peers := make([]string, 0, n-1)
		for j, u := range urls {
			if j != i {
				peers = append(peers, u)
			}
		}
		scopes[i] = obs.New(fmt.Sprintf("swappbench-replica%d", i))
		srv := server.New(server.Config{
			CacheSize:   cacheSize,
			EvalWorkers: evalWorkers,
			Obs:         scopes[i],
			Self:        urls[i],
			Peers:       peers,

			DisableLayeredCache: sc.noStore,
		})
		srvs[i] = srv
		servers[i] = &http.Server{Handler: srv.Handler()}
		go func(hs *http.Server, ln net.Listener) { _ = hs.Serve(ln) }(servers[i], lns[i])
	}
	stop := func() {
		for _, hs := range servers {
			_ = hs.Close()
		}
		for _, s := range scopes {
			s.End()
		}
	}
	quiesce := func() {
		for _, s := range srvs {
			s.WaitReplication()
		}
	}
	return lns[0].Addr().String(), stop, quiesce, nil
}

// checkBatch verifies a 200 batch envelope really carried n individual
// successes — a batch with failed entries must count as a scenario error,
// not a fast "success".
func checkBatch(body []byte, n int) error {
	var doc struct {
		Results []struct {
			Status int    `json:"status"`
			Error  string `json:"error"`
		} `json:"results"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		return fmt.Errorf("parsing batch response: %w", err)
	}
	if len(doc.Results) != n {
		return fmt.Errorf("batch returned %d results, want %d", len(doc.Results), n)
	}
	for i, r := range doc.Results {
		if r.Status != http.StatusOK {
			return fmt.Errorf("batch entry %d: status %d: %s", i, r.Status, r.Error)
		}
	}
	return nil
}

// memSnapshot captures the server process's allocation counters: straight
// from runtime in in-process mode, scraped from /debug/vars externally.
type memCounters struct {
	mallocs, totalAlloc, sys uint64
}

func memSnapshot(addr, base string) (memCounters, error) {
	if addr == "" {
		runtime.GC()
		var m runtime.MemStats
		runtime.ReadMemStats(&m)
		return memCounters{mallocs: m.Mallocs, totalAlloc: m.TotalAlloc, sys: m.Sys}, nil
	}
	resp, err := http.Get("http://" + strings.TrimPrefix(base, "http://") + "/debug/vars")
	if err != nil {
		return memCounters{}, fmt.Errorf("scraping /debug/vars: %w", err)
	}
	defer resp.Body.Close()
	var doc struct {
		MemStats struct {
			Mallocs    uint64 `json:"Mallocs"`
			TotalAlloc uint64 `json:"TotalAlloc"`
			Sys        uint64 `json:"Sys"`
		} `json:"memstats"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return memCounters{}, fmt.Errorf("parsing /debug/vars: %w", err)
	}
	return memCounters{doc.MemStats.Mallocs, doc.MemStats.TotalAlloc, doc.MemStats.Sys}, nil
}

// procRSS reads the process's resident set from /proc (linux), in bytes.
func procRSS() int64 {
	b, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0
	}
	for _, line := range strings.Split(string(b), "\n") {
		if !strings.HasPrefix(line, "VmRSS:") {
			continue
		}
		f := strings.Fields(line)
		if len(f) < 2 {
			return 0
		}
		kb, err := strconv.ParseInt(f[1], 10, 64)
		if err != nil {
			return 0
		}
		return kb * 1024
	}
	return 0
}

// compare derives the headline ratios, optionally against a baseline run.
func compare(cur, base []scenarioResult) *comparison {
	c := &comparison{}
	find := func(rs []scenarioResult, name string) *scenarioResult {
		for i := range rs {
			if rs[i].Name == name {
				return &rs[i]
			}
		}
		return nil
	}
	if cold, warm := find(cur, "cache-cold"), find(cur, "shared-base-warm"); cold != nil && warm != nil && warm.P50Ms > 0 {
		c.ColdP50OverWarmP50 = round2(cold.P50Ms / warm.P50Ms)
	}
	if base != nil {
		c.AllocsChangePct = map[string]float64{}
		c.P50ChangePct = map[string]float64{}
		for i := range cur {
			b := find(base, cur[i].Name)
			if b == nil {
				continue
			}
			if b.AllocsPerOp > 0 {
				c.AllocsChangePct[cur[i].Name] = round1(100 * (cur[i].AllocsPerOp - b.AllocsPerOp) / b.AllocsPerOp)
			}
			if b.P50Ms > 0 {
				c.P50ChangePct[cur[i].Name] = round1(100 * (cur[i].P50Ms - b.P50Ms) / b.P50Ms)
			}
		}
	}
	return c
}

// scenarioKnob names the swappbench flag that enables one scenario, for
// strict-gate diagnostics.
func scenarioKnob(name string) string {
	switch {
	case name == "cache-cold":
		return "-cold"
	case name == "shared-base-warm":
		return "-warm"
	case name == "cache-hot":
		return "-hot"
	case name == "degraded-input":
		return "-degraded"
	case name == "multi-replica-batch":
		return "-multi"
	case strings.HasPrefix(name, "cluster-scaling-"):
		return "-scaling"
	}
	return ""
}

// replicaScenario reports whether a scenario hosts peer-wired replicas and
// drives real HTTP between them (vs a single in-process server).
func replicaScenario(name string) bool {
	return name == "multi-replica-batch" || strings.HasPrefix(name, "cluster-scaling-")
}

// gateCheck compares a fresh run against the committed baseline file and
// reports pass/fail. Latency is gated on p50: every scenario runs at most
// a few hundred requests, so its p95 is one or two outlier samples and
// swings 30-50% run to run on a shared box, while the median is stable.
// Even the median breathes with host load, so latency gets its own looser
// tolerance (maxLatRegressPct) than allocs/op (maxRegressPct); allocs/op
// is near-deterministic for single-server scenarios but breathes too in
// the replica scenarios (retry/admission timing between peers), which
// therefore use the latency tolerance for both metrics. Latency comparisons only hold on comparable hardware: when the committed
// environment differs in CPU count, they are skipped (with a note) and
// only the host-independent allocs/op gate applies. Neither metric is
// compared when a scenario ran a different number of requests than the
// baseline: allocs/op amortises fixed per-scenario costs (first-request
// lazy init, replica background work) over the op count, and latency
// depends on how many requests queue against the worker pool — such a
// scenario contributes coverage only.
//
// In strict mode (CI) coverage itself is gated: every baseline scenario
// must appear in this run, so a misconfigured knob — or a harness edit that
// silently drops a scenario — cannot shrink what the gate protects.
func gateCheck(w io.Writer, cur, committed *benchFile, maxRegressPct, maxLatRegressPct float64, strict bool) bool {
	comparableHost := committed.Environment.CPUs == cur.Environment.CPUs &&
		committed.Environment.GOMAXPROCS == cur.Environment.GOMAXPROCS
	if !comparableHost {
		fmt.Fprintf(w, "swappbench: gate: committed baseline ran on %d CPUs (here %d); "+
			"latency gates skipped, comparing allocs/op only\n",
			committed.Environment.CPUs, cur.Environment.CPUs)
	}
	pass := true
	for _, c := range cur.Scenarios {
		var base *scenarioResult
		for i := range committed.Scenarios {
			if committed.Scenarios[i].Name == c.Name {
				base = &committed.Scenarios[i]
				break
			}
		}
		if base == nil {
			fmt.Fprintf(w, "swappbench: gate: scenario %s not in baseline, skipped\n", c.Name)
			continue
		}
		check := func(metric string, got, want, tolerancePct float64, enabled bool) {
			if !enabled || want <= 0 {
				return
			}
			regr := 100 * (got - want) / want
			status := "ok"
			if regr > tolerancePct {
				status = "FAIL"
				pass = false
			}
			fmt.Fprintf(w, "swappbench: gate: %-18s %-14s %12.1f vs %12.1f (%+6.1f%%, tol %.0f%%) %s\n",
				c.Name, metric, got, want, regr, tolerancePct, status)
		}
		if c.Requests != base.Requests {
			fmt.Fprintf(w, "swappbench: gate: %-18s measured at %d requests vs %d in baseline; "+
				"metrics not compared (coverage only)\n", c.Name, c.Requests, base.Requests)
			continue
		}
		allocTol := maxRegressPct
		if replicaScenario(c.Name) {
			// Replica scenarios route real HTTP between peer servers; how
			// many forwards hit the admission queue's 503-and-retry path is
			// timing-dependent, so even allocs/op breathes run to run and
			// gets the looser latency tolerance.
			allocTol = maxLatRegressPct
		}
		check("p50_ms", c.P50Ms, base.P50Ms, maxLatRegressPct, comparableHost)
		check("allocs_per_op", c.AllocsPerOp, base.AllocsPerOp, allocTol, true)
	}
	if strict {
		covered := map[string]bool{}
		for _, c := range cur.Scenarios {
			covered[c.Name] = true
		}
		for _, b := range committed.Scenarios {
			if covered[b.Name] {
				continue
			}
			pass = false
			if knob := scenarioKnob(b.Name); knob != "" {
				fmt.Fprintf(w, "swappbench: gate: FAIL baseline scenario %s not measured by this run (enable it with %s)\n", b.Name, knob)
			} else {
				fmt.Fprintf(w, "swappbench: gate: FAIL baseline scenario %s is unknown to this harness; "+
					"regenerate BENCH_swappd.json or restore the scenario\n", b.Name)
			}
		}
	}
	return pass
}

func loadBench(path string) (*benchFile, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc benchFile
	if err := json.Unmarshal(b, &doc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &doc, nil
}

// percentile returns the q-quantile of sorted latencies (nearest-rank).
func percentile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q*float64(len(sorted))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

func ms(d time.Duration) float64 { return round3(float64(d) / float64(time.Millisecond)) }
func round1(v float64) float64   { return roundTo(v, 10) }
func round2(v float64) float64   { return roundTo(v, 100) }
func round3(v float64) float64   { return roundTo(v, 1000) }
func roundTo(v float64, s float64) float64 {
	if v < 0 {
		return -roundTo(-v, s)
	}
	return float64(int64(v*s+0.5)) / s
}

func firstLine(b []byte) string {
	s := strings.TrimSpace(string(b))
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		s = s[:i]
	}
	return s
}

func firstErr(errs []error) error {
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
