// Command imbrun runs the IMB benchmark suite (plus the paper's custom
// multi-Sendrecv) on a simulated machine and prints the Eq. 3 parameter
// table SWAPP's communication projection consumes.
//
// Usage:
//
//	imbrun -machine bgp -ranks 64
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/arch"
	"repro/internal/imb"
	"repro/internal/units"
)

func main() {
	var (
		machine = flag.String("machine", arch.Hydra, "machine: "+strings.Join(arch.Names(), ", "))
		ranks   = flag.Int("ranks", 16, "MPI task count")
	)
	flag.Parse()

	m, err := arch.Get(*machine)
	if err != nil {
		fatal("%v", err)
	}
	fmt.Printf("IMB + multi-Sendrecv on %s, %d ranks (%d nodes)\n\n", m, *ranks, m.NodesFor(*ranks))
	t, err := imb.Run(m, *ranks, nil)
	if err != nil {
		fatal("%v", err)
	}

	fmt.Printf("%-12s", "size")
	for _, rt := range t.Routines() {
		fmt.Printf(" %14s", strings.TrimPrefix(string(rt), "MPI_"))
	}
	fmt.Println()
	for _, size := range t.Sizes {
		fmt.Printf("%-12s", units.FormatBytes(size))
		for _, rt := range t.Routines() {
			v, err := t.Time(rt, size)
			if err != nil {
				fmt.Printf(" %14s", "-")
				continue
			}
			fmt.Printf(" %14s", units.FormatSeconds(v))
		}
		fmt.Println()
	}

	fmt.Printf("\nEq. 1 non-blocking fit (multi-Sendrecv): overhead = %s\n",
		units.FormatSeconds(t.NBOverhead()))
	fmt.Printf("%-12s %16s %16s\n", "size", "T_inFlight intra", "T_inFlight inter")
	for _, size := range t.Sizes {
		fmt.Printf("%-12s %16s %16s\n", units.FormatBytes(size),
			units.FormatSeconds(t.InFlightIntra(size)),
			units.FormatSeconds(t.InFlightInter(size)))
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "imbrun: "+format+"\n", args...)
	os.Exit(1)
}
