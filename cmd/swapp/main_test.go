package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obs"
)

// referenceFile is the repository's pinned evaluation output.
const referenceFile = "../../docs/evaluation_reference.txt"

// goldenCommands parses the "swapp CLI reference output" section of the
// reference file into (argv, expected stdout) pairs. Each block starts with
// a "$ swapp ..." line and runs until the next one (or EOF); blank padding
// between blocks is not part of the pinned output.
func goldenCommands(t *testing.T) (cases [][2]string) {
	t.Helper()
	data, err := os.ReadFile(referenceFile)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(string(data), "\n")
	for i := 0; i < len(lines); i++ {
		if !strings.HasPrefix(lines[i], "$ swapp ") {
			continue
		}
		args := strings.TrimPrefix(lines[i], "$ swapp ")
		var out []string
		for j := i + 1; j < len(lines) && !strings.HasPrefix(lines[j], "$ swapp "); j++ {
			out = append(out, lines[j])
			i = j
		}
		cases = append(cases, [2]string{args, strings.TrimRight(strings.Join(out, "\n"), "\n")})
	}
	if len(cases) == 0 {
		t.Fatalf("no '$ swapp' golden blocks found in %s", referenceFile)
	}
	return cases
}

// TestGoldenOutput pins the CLI's report for every command recorded in the
// reference file: all three benchmarks at one rank count. The engine is
// deterministic, so any drift here is a behaviour change that must be
// deliberate (regenerate the section in docs/evaluation_reference.txt).
func TestGoldenOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("full projections take ~20s; skipped with -short")
	}
	for _, c := range goldenCommands(t) {
		args, want := strings.Fields(c[0]), c[1]
		t.Run(c[0], func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			if code := run(args, &stdout, &stderr); code != 0 {
				t.Fatalf("run(%q) = %d, stderr:\n%s", args, code, stderr.String())
			}
			got := strings.TrimRight(stdout.String(), "\n")
			if got != want {
				t.Errorf("output drifted from %s.\ngot:\n%s\nwant:\n%s", referenceFile, got, want)
			}
		})
	}
}

// checkSpan recursively verifies the trace invariants for a serial
// (-workers 1) run: every child lies within its parent's window and each
// span's direct children durations sum to no more than the span's own.
// Offsets are truncated to whole µs on export, so containment gets 1µs of
// slack per comparison.
func checkSpan(t *testing.T, s *obs.SpanData) {
	t.Helper()
	var sum int64
	for _, c := range s.Spans {
		if c.StartUS+1 < s.StartUS || c.StartUS+c.DurUS > s.StartUS+s.DurUS+1 {
			t.Errorf("span %s [%d,+%d] escapes parent %s [%d,+%d]",
				c.Name, c.StartUS, c.DurUS, s.Name, s.StartUS, s.DurUS)
		}
		sum += c.DurUS
		checkSpan(t, c)
	}
	if sum > s.DurUS {
		t.Errorf("span %s: children durations sum to %dµs > own %dµs", s.Name, sum, s.DurUS)
	}
}

// TestTraceOutput runs a projection with -trace and asserts the emitted
// file is a valid JSON trace whose root span bounds its children, and whose
// metrics carry the engine's counters.
func TestTraceOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("full projection; skipped with -short")
	}
	path := filepath.Join(t.TempDir(), "trace.json")
	args := []string{"-bench", "LU-MZ", "-class", "C", "-ranks", "16",
		"-target", "power6-575", "-workers", "1", "-trace", path}
	var stdout, stderr bytes.Buffer
	if code := run(args, &stdout, &stderr); code != 0 {
		t.Fatalf("run(%q) = %d, stderr:\n%s", args, code, stderr.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var tr obs.TraceJSON
	if err := json.Unmarshal(data, &tr); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if tr.Root == nil || tr.Root.Name != "swapp" {
		t.Fatalf("unexpected trace root: %+v", tr.Root)
	}
	if tr.Root.DurUS <= 0 || len(tr.Root.Spans) == 0 {
		t.Fatalf("root span empty: dur=%dµs, %d children", tr.Root.DurUS, len(tr.Root.Spans))
	}
	checkSpan(t, tr.Root)
	// The engine's stage spans and counters must be present.
	names := map[string]bool{}
	var walk func(*obs.SpanData)
	walk = func(s *obs.SpanData) {
		names[s.Name] = true
		for _, c := range s.Spans {
			walk(c)
		}
	}
	walk(tr.Root)
	for _, want := range []string{"core.pipeline.hydra->power6-575", "core.characterize.LU-MZ.C", "core.project.LU-MZ.C@16", "ga.run"} {
		if !names[want] {
			t.Errorf("trace is missing span %q", want)
		}
	}
	for _, counter := range []string{"ga.evaluations", "ga.generations", "core.projections"} {
		v, ok := tr.Metrics.Counter(counter)
		if !ok || v <= 0 {
			t.Errorf("trace metrics missing counter %q (got %d, %v)", counter, v, ok)
		}
	}
}
