package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/arch"
	"repro/internal/persist"
	"repro/internal/spec"
)

// TestBadInputPaths pins the CLI contract for broken invocations: one
// actionable line on stderr naming the problem file, exit 1, and nothing
// on stdout — no panic, no multi-page dump, no partial report.
func TestBadInputPaths(t *testing.T) {
	dir := t.TempDir()
	garbage := filepath.Join(dir, "garbage.json")
	if err := os.WriteFile(garbage, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	missing := filepath.Join(dir, "does-not-exist.json")

	cases := []struct {
		name string
		args []string
		frag string // must appear in the single stderr line
	}{
		{"missing spec base", []string{"-spec-base", missing}, "SPEC data"},
		{"missing spec target", []string{"-spec-target", missing}, "SPEC data"},
		{"missing imb base", []string{"-imb-base", missing}, "IMB data"},
		{"missing imb target", []string{"-imb-target", missing}, "IMB data"},
		{"corrupt spec", []string{"-spec-base", garbage}, garbage},
		{"corrupt imb", []string{"-imb-base", garbage}, garbage},
		{"second imb path bad", []string{"-imb-base", garbage + "," + missing}, garbage},
		{"unwritable trace", []string{"-trace", filepath.Join(dir, "no", "such", "dir", "t.json")}, "trace"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			args := append([]string{"-bench", "LU-MZ", "-class", "C", "-ranks", "16"}, tc.args...)
			if code := run(args, &stdout, &stderr); code != 1 {
				t.Fatalf("exit %d, want 1 (stderr: %q)", code, stderr.String())
			}
			if stdout.Len() != 0 {
				t.Errorf("stdout not empty: %q", stdout.String())
			}
			msg := strings.TrimRight(stderr.String(), "\n")
			if strings.Count(msg, "\n") != 0 {
				t.Errorf("error not a single line:\n%s", msg)
			}
			if !strings.HasPrefix(msg, "swapp: ") {
				t.Errorf("error missing the swapp: prefix: %q", msg)
			}
			if !strings.Contains(msg, tc.frag) {
				t.Errorf("error %q does not mention %q", msg, tc.frag)
			}
			// The message must point at the offending file.
			if tc.frag != "trace" && !strings.Contains(msg, dir) {
				t.Errorf("error %q does not name the file path", msg)
			}
		})
	}
}

// TestPublishedDataMatchesMeasured proves the -spec-*/-imb-* flags feed
// the pipeline the same numbers it would measure itself: a projection
// from published (persisted) base SPEC data is byte-identical to the
// self-measured one. This is the paper's workflow — projecting from
// published target data — holding the determinism contract.
func TestPublishedDataMatchesMeasured(t *testing.T) {
	if testing.Short() {
		t.Skip("two full pipelines in -short mode")
	}
	results, err := spec.RunSuite(arch.MustGet(arch.Hydra), true)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := persist.MarshalSpec(arch.Hydra, results)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "spec-hydra.json")
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}

	base := []string{"-bench", "LU-MZ", "-class", "C", "-ranks", "16"}
	var measured, published bytes.Buffer
	var stderr bytes.Buffer
	if code := run(base, &measured, &stderr); code != 0 {
		t.Fatalf("measured run failed: %s", stderr.String())
	}
	stderr.Reset()
	if code := run(append(base, "-spec-base", path), &published, &stderr); code != 0 {
		t.Fatalf("published-data run failed: %s", stderr.String())
	}
	if measured.String() != published.String() {
		t.Errorf("published SPEC data changed the projection:\n-- measured --\n%s\n-- published --\n%s",
			measured.String(), published.String())
	}
	// Clean published data must not surface a quality section.
	if strings.Contains(published.String(), "quality:") {
		t.Errorf("clean published data produced a quality section:\n%s", published.String())
	}
}
