// Command swapp projects the performance of a NAS Multi-Zone benchmark
// onto a target machine using the SWAPP pipeline, optionally validating
// the projection against a measured (simulated) run.
//
// Usage:
//
//	swapp -bench BT-MZ -class C -ranks 64 -target power6-575 [-validate]
//
// Observability (see internal/obs; the projection itself is byte-identical
// with these on or off):
//
//	-trace out.json   write a hierarchical JSON span trace + metrics
//	-metrics          print the metric registry to stderr on exit
//	-debug-addr :0    serve /debug/pprof, /debug/vars, /metrics, /trace.json
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	swapp "repro"
	"repro/internal/core"
	"repro/internal/imb"
	"repro/internal/nas"
	"repro/internal/obs"
	"repro/internal/persist"
	"repro/internal/report"
	"repro/internal/spec"
)

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

// run is the CLI body, factored for tests: parse args, project, render.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("swapp", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		bench     = fs.String("bench", "BT-MZ", "benchmark: BT-MZ, SP-MZ or LU-MZ")
		class     = fs.String("class", "C", "problem class: C or D")
		ranks     = fs.Int("ranks", 64, "target core count Ck")
		target    = fs.String("target", swapp.TargetPower6, "target machine: "+strings.Join(swapp.MachineNames(), ", "))
		base      = fs.String("base", swapp.BaseHydra, "base machine")
		validate  = fs.Bool("validate", false, "also run the application on the target and report the error")
		workers   = fs.Int("workers", 0, "evaluation worker pool size (0 = GOMAXPROCS, 1 = serial); the projection is identical either way")
		traceOut  = fs.String("trace", "", "write a JSON span trace (spans + metrics) to this file")
		metrics   = fs.Bool("metrics", false, "print collected metrics to stderr on exit")
		debugAddr = fs.String("debug-addr", "", "serve net/http/pprof, expvar and metrics on this address (e.g. localhost:6060)")
		specBase  = fs.String("spec-base", "", "published SPEC results for the base machine (JSON, see internal/persist)")
		specTgt   = fs.String("spec-target", "", "published SPEC results for the target machine")
		imbBase   = fs.String("imb-base", "", "published IMB tables for the base machine (JSON, comma-separated for multiple core counts)")
		imbTgt    = fs.String("imb-target", "", "published IMB tables for the target machine")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if len(*class) != 1 {
		fmt.Fprintln(stderr, "swapp: class must be a single letter (C or D)")
		return 1
	}

	data, err := loadData(*specBase, *specTgt, *imbBase, *imbTgt)
	if err != nil {
		fmt.Fprintf(stderr, "swapp: %v\n", err)
		return 1
	}

	// Open the trace destination before the (potentially long) projection,
	// so a bad path fails in milliseconds rather than after minutes.
	var traceFile *os.File
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintf(stderr, "swapp: cannot write trace: %v\n", err)
			return 1
		}
		traceFile = f
		defer traceFile.Close()
	}

	// The observability root: nil (zero-cost no-op) unless requested.
	var scope *obs.Scope
	if *traceOut != "" || *metrics || *debugAddr != "" {
		scope = obs.New("swapp")
	}
	if *debugAddr != "" {
		addr, stop, err := obs.ServeDebug(*debugAddr, scope)
		if err != nil {
			fmt.Fprintf(stderr, "swapp: debug server: %v\n", err)
			return 1
		}
		defer stop()
		fmt.Fprintf(stderr, "swapp: debug server on http://%s/debug/pprof/\n", addr)
	}

	req := swapp.Request{
		Base:    *base,
		Target:  *target,
		Bench:   nas.Benchmark(*bench),
		Class:   nas.Class((*class)[0]),
		Ranks:   *ranks,
		Workers: *workers,
		Obs:     scope,
		Data:    data,
	}

	var res *swapp.Result
	if *validate {
		res, err = swapp.ProjectAndValidate(req)
	} else {
		res, err = swapp.Project(req)
	}
	scope.End()
	if err != nil {
		fmt.Fprintf(stderr, "swapp: %v\n", err)
		return 1
	}

	fmt.Fprint(stdout, report.Projection(res.Projection, res.Validation))

	if traceFile != nil {
		werr := scope.WriteTrace(traceFile)
		if cerr := traceFile.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintf(stderr, "swapp: writing trace: %v\n", werr)
			return 1
		}
		fmt.Fprintf(stderr, "swapp: trace written to %s\n", *traceOut)
	}
	if *metrics {
		scope.Metrics().WriteText(stderr)
	}
	return 0
}

// loadData reads published benchmark data files into a pipeline pre-seed.
// Counts or suites not supplied are measured by the pipeline as usual. The
// lenient decoders are used on purpose: partial or damaged published data
// degrades the projection (recorded in its Quality block) instead of
// refusing to run, while unreadable files fail fast with the path in the
// message.
func loadData(specBase, specTarget, imbBase, imbTarget string) (*core.PipelineData, error) {
	if specBase == "" && specTarget == "" && imbBase == "" && imbTarget == "" {
		return nil, nil
	}
	data := &core.PipelineData{}
	loadSpec := func(path string, dst *map[string]spec.Result) error {
		if path == "" {
			return nil
		}
		b, err := os.ReadFile(path)
		if err != nil {
			return fmt.Errorf("cannot read SPEC data: %v", err)
		}
		_, results, defects, err := persist.UnmarshalSpecLenient(b)
		if err != nil {
			return fmt.Errorf("cannot load SPEC data %s: %v", path, err)
		}
		*dst = results
		data.Defects = append(data.Defects, defects...)
		return nil
	}
	loadIMB := func(paths string, dst *map[int]*imb.Table) error {
		if paths == "" {
			return nil
		}
		m := map[int]*imb.Table{}
		for _, path := range strings.Split(paths, ",") {
			b, err := os.ReadFile(path)
			if err != nil {
				return fmt.Errorf("cannot read IMB data: %v", err)
			}
			t, defects, err := persist.UnmarshalIMBLenient(b)
			if err != nil {
				return fmt.Errorf("cannot load IMB data %s: %v", path, err)
			}
			m[t.Ranks] = t
			data.Defects = append(data.Defects, defects...)
		}
		*dst = m
		return nil
	}
	if err := loadSpec(specBase, &data.SpecBase); err != nil {
		return nil, err
	}
	if err := loadSpec(specTarget, &data.SpecTarget); err != nil {
		return nil, err
	}
	if err := loadIMB(imbBase, &data.IMBBase); err != nil {
		return nil, err
	}
	if err := loadIMB(imbTarget, &data.IMBTarget); err != nil {
		return nil, err
	}
	return data, nil
}
