// Command swapp projects the performance of a NAS Multi-Zone benchmark
// onto a target machine using the SWAPP pipeline, optionally validating
// the projection against a measured (simulated) run.
//
// Usage:
//
//	swapp -bench BT-MZ -class C -ranks 64 -target power6-575 [-validate]
//
// Observability (see internal/obs; the projection itself is byte-identical
// with these on or off):
//
//	-trace out.json   write a hierarchical JSON span trace + metrics
//	-metrics          print the metric registry to stderr on exit
//	-debug-addr :0    serve /debug/pprof, /debug/vars, /metrics, /trace.json
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	swapp "repro"
	"repro/internal/nas"
	"repro/internal/obs"
	"repro/internal/report"
)

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

// run is the CLI body, factored for tests: parse args, project, render.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("swapp", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		bench     = fs.String("bench", "BT-MZ", "benchmark: BT-MZ, SP-MZ or LU-MZ")
		class     = fs.String("class", "C", "problem class: C or D")
		ranks     = fs.Int("ranks", 64, "target core count Ck")
		target    = fs.String("target", swapp.TargetPower6, "target machine: "+strings.Join(swapp.MachineNames(), ", "))
		base      = fs.String("base", swapp.BaseHydra, "base machine")
		validate  = fs.Bool("validate", false, "also run the application on the target and report the error")
		workers   = fs.Int("workers", 0, "evaluation worker pool size (0 = GOMAXPROCS, 1 = serial); the projection is identical either way")
		traceOut  = fs.String("trace", "", "write a JSON span trace (spans + metrics) to this file")
		metrics   = fs.Bool("metrics", false, "print collected metrics to stderr on exit")
		debugAddr = fs.String("debug-addr", "", "serve net/http/pprof, expvar and metrics on this address (e.g. localhost:6060)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if len(*class) != 1 {
		fmt.Fprintln(stderr, "swapp: class must be a single letter (C or D)")
		return 1
	}

	// The observability root: nil (zero-cost no-op) unless requested.
	var scope *obs.Scope
	if *traceOut != "" || *metrics || *debugAddr != "" {
		scope = obs.New("swapp")
	}
	if *debugAddr != "" {
		addr, stop, err := obs.ServeDebug(*debugAddr, scope)
		if err != nil {
			fmt.Fprintf(stderr, "swapp: debug server: %v\n", err)
			return 1
		}
		defer stop()
		fmt.Fprintf(stderr, "swapp: debug server on http://%s/debug/pprof/\n", addr)
	}

	req := swapp.Request{
		Base:    *base,
		Target:  *target,
		Bench:   nas.Benchmark(*bench),
		Class:   nas.Class((*class)[0]),
		Ranks:   *ranks,
		Workers: *workers,
		Obs:     scope,
	}

	var res *swapp.Result
	var err error
	if *validate {
		res, err = swapp.ProjectAndValidate(req)
	} else {
		res, err = swapp.Project(req)
	}
	scope.End()
	if err != nil {
		fmt.Fprintf(stderr, "swapp: %v\n", err)
		return 1
	}

	fmt.Fprint(stdout, report.Projection(res.Projection, res.Validation))

	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintf(stderr, "swapp: %v\n", err)
			return 1
		}
		werr := scope.WriteTrace(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintf(stderr, "swapp: writing trace: %v\n", werr)
			return 1
		}
		fmt.Fprintf(stderr, "swapp: trace written to %s\n", *traceOut)
	}
	if *metrics {
		scope.Metrics().WriteText(stderr)
	}
	return 0
}
