// Command swapp projects the performance of a NAS Multi-Zone benchmark
// onto a target machine using the SWAPP pipeline, optionally validating
// the projection against a measured (simulated) run.
//
// Usage:
//
//	swapp -bench BT-MZ -class C -ranks 64 -target power6-575 [-validate]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	swapp "repro"
	"repro/internal/nas"
	"repro/internal/units"
)

func main() {
	var (
		bench    = flag.String("bench", "BT-MZ", "benchmark: BT-MZ, SP-MZ or LU-MZ")
		class    = flag.String("class", "C", "problem class: C or D")
		ranks    = flag.Int("ranks", 64, "target core count Ck")
		target   = flag.String("target", swapp.TargetPower6, "target machine: "+strings.Join(swapp.MachineNames(), ", "))
		base     = flag.String("base", swapp.BaseHydra, "base machine")
		validate = flag.Bool("validate", false, "also run the application on the target and report the error")
		workers  = flag.Int("workers", 0, "evaluation worker pool size (0 = GOMAXPROCS, 1 = serial); the projection is identical either way")
	)
	flag.Parse()

	if len(*class) != 1 {
		fatal("class must be a single letter (C or D)")
	}
	req := swapp.Request{
		Base:    *base,
		Target:  *target,
		Bench:   nas.Benchmark(*bench),
		Class:   nas.Class((*class)[0]),
		Ranks:   *ranks,
		Workers: *workers,
	}

	var res *swapp.Result
	var err error
	if *validate {
		res, err = swapp.ProjectAndValidate(req)
	} else {
		res, err = swapp.Project(req)
	}
	if err != nil {
		fatal("%v", err)
	}

	p := res.Projection
	fmt.Println(res)
	fmt.Printf("\ncompute component:\n")
	fmt.Printf("  characterised at Ci=%d, γ=%.3f (CCSM)\n", p.Compute.CharCount, p.Gamma)
	if p.HyperScaled {
		fmt.Printf("  ACSM: cache-footprint transition at Ch≈%.0f cores (hyper-scaling regime)\n", p.ACSM.Ch)
	}
	fmt.Printf("  metric-group ranking (most significant first): G%d G%d G%d G%d G%d G%d\n",
		p.Compute.Ranking[0], p.Compute.Ranking[1], p.Compute.Ranking[2],
		p.Compute.Ranking[3], p.Compute.Ranking[4], p.Compute.Ranking[5])
	fmt.Printf("  surrogate (Eq. 2):\n")
	for _, term := range p.Compute.Surrogate {
		fmt.Printf("    %-18s w=%.4f\n", term.Bench, term.Weight)
	}
	fmt.Printf("\ncommunication component (Eq. 5/6, per task):\n")
	fmt.Printf("  %-14s %10s %12s %12s %12s\n", "routine", "calls", "T_transfer", "T_wait", "T_elapsed")
	for _, rp := range p.Comm.Routines {
		fmt.Printf("  %-14s %10.1f %12s %12s %12s\n",
			rp.Routine, rp.Calls,
			units.FormatSeconds(rp.TargetTransfer),
			units.FormatSeconds(rp.TargetWait),
			units.FormatSeconds(rp.TargetElapsed()))
	}
	if res.Validation != nil {
		v := res.Validation
		fmt.Printf("\nvalidation against the measured run:\n")
		fmt.Printf("  combined    %+7.2f%%\n", v.ErrCombined)
		fmt.Printf("  computation %+7.2f%%\n", v.ErrCompute)
		fmt.Printf("  comm        %+7.2f%%\n", v.ErrComm)
		for cls, e := range v.ErrByClass {
			fmt.Printf("  %-11s %+7.2f%%\n", cls, e)
		}
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "swapp: "+format+"\n", args...)
	os.Exit(1)
}
