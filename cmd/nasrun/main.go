// Command nasrun executes a NAS Multi-Zone benchmark on a simulated
// machine and prints its MPI profile — the "measured" side of the
// reproduction.
//
// Usage:
//
//	nasrun -bench SP-MZ -class C -ranks 128 -machine hydra
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/arch"
	"repro/internal/nas"
	"repro/internal/units"
)

func main() {
	var (
		bench   = flag.String("bench", "BT-MZ", "benchmark: BT-MZ, SP-MZ or LU-MZ")
		class   = flag.String("class", "C", "problem class: C or D")
		ranks   = flag.Int("ranks", 16, "MPI task count")
		threads = flag.Int("threads", 1, "OpenMP threads per rank (hybrid mode)")
		machine = flag.String("machine", arch.Hydra, "machine: "+strings.Join(arch.Names(), ", "))
	)
	flag.Parse()

	m, err := arch.Get(*machine)
	if err != nil {
		fatal("%v", err)
	}
	if len(*class) != 1 {
		fatal("class must be a single letter")
	}
	cfg := nas.Config{Bench: nas.Benchmark(*bench), Class: nas.Class((*class)[0]), Ranks: *ranks, Threads: *threads}
	inst, err := nas.New(cfg)
	if err != nil {
		fatal("%v", err)
	}
	fmt.Printf("%s on %s\n", cfg, m)
	fmt.Printf("zones: %d (%d×%d), imbalance (max/mean work): %.3f, messages/step: %d\n\n",
		inst.Spec.Zones(), inst.Spec.ZonesX, inst.Spec.ZonesY, inst.Imbalance(), inst.MessagesPerStep())

	res, err := inst.Run(m)
	if err != nil {
		fatal("%v", err)
	}
	fmt.Printf("makespan: %s\n\n", units.FormatSeconds(res.Makespan))
	fmt.Print(res.Profile.String())
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "nasrun: "+format+"\n", args...)
	os.Exit(1)
}
