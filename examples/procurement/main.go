// Procurement: the paper's motivating use case — a site is buying a new
// system and wants to know how its workload would perform on candidate
// machines it cannot benchmark directly.
//
// The site's workload mix is three applications with different characters
// (compute-bound LU-MZ, exchange-heavy SP-MZ, imbalance-prone BT-MZ), each
// weighted by its share of the site's cycles. SWAPP projects each
// application onto every candidate from base-machine profiles plus the
// candidates' published SPEC/IMB numbers, and ranks the candidates by
// workload-weighted throughput gain.
//
// Run with:
//
//	go run ./examples/procurement
package main

import (
	"fmt"
	"log"
	"sort"

	swapp "repro"
	"repro/internal/arch"
	"repro/internal/nas"
)

// workloadItem is one application's share of the site's cycle budget.
type workloadItem struct {
	Bench  nas.Benchmark
	Class  nas.Class
	Ranks  int
	Weight float64 // fraction of site cycles
}

func main() {
	workload := []workloadItem{
		{swapp.BT, swapp.ClassC, 64, 0.5},
		{swapp.SP, swapp.ClassC, 64, 0.3},
		{swapp.LU, swapp.ClassC, 16, 0.2},
	}
	candidates := []string{swapp.TargetPower6, swapp.TargetBlueGene, swapp.TargetWestmere}

	fmt.Println("Procurement study: projecting the site workload onto candidate systems")
	fmt.Printf("base machine: %s\n\n", swapp.BaseHydra)

	type score struct {
		target string
		// speedup is the workload-weighted base/target runtime ratio:
		// >1 means the candidate runs the mix faster than the base.
		speedup float64
	}
	var scores []score

	for _, target := range candidates {
		fmt.Printf("candidate %s:\n", target)
		weighted := 0.0
		for _, item := range workload {
			res, err := swapp.Project(swapp.Request{
				Target: target,
				Bench:  item.Bench, Class: item.Class, Ranks: item.Ranks,
			})
			if err != nil {
				log.Fatal(err)
			}
			// Base-side reference: the application's profiled time at
			// the same count (compute + communication on the base).
			baseRes, err := nas.Run(nas.Config{Bench: item.Bench, Class: item.Class, Ranks: item.Ranks},
				arch.MustGet(swapp.BaseHydra))
			if err != nil {
				log.Fatal(err)
			}
			ratio := baseRes.Makespan / res.TotalSeconds()
			weighted += item.Weight * ratio
			fmt.Printf("  %-8s class %c @%3d ranks: projected %8.1fs (base %8.1fs, speedup ×%.2f, weight %.0f%%)\n",
				item.Bench, item.Class, item.Ranks, res.TotalSeconds(), baseRes.Makespan, ratio, item.Weight*100)
		}
		fmt.Printf("  workload-weighted speedup over base: ×%.2f\n\n", weighted)
		scores = append(scores, score{target, weighted})
	}

	sort.Slice(scores, func(i, j int) bool { return scores[i].speedup > scores[j].speedup })
	fmt.Println("ranking (best candidate first):")
	for i, s := range scores {
		fmt.Printf("  %d. %-16s ×%.2f\n", i+1, s.target, s.speedup)
	}
}
