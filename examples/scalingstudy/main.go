// Scalingstudy: the CCSM and ACSM models in isolation (paper §3).
//
// SWAPP scales compute projections across core counts with two models:
// the Compute Component Strong Scaling Model (a power-law fit of per-task
// compute time vs core count, giving the γ factor of Eq. 7) and the
// Application Cache Strong Scaling Model (extrapolating the G5
// data-from-L3 counter to find the core count Ch where the per-rank
// working set drops into a lower cache level and the application
// hyper-scales).
//
// This example profiles BT-MZ class C at a few core counts on the base
// machine, fits both models, prints the scaling table, and shows how the
// γ-scaled projection compares with brute-force profiled times — including
// across the hyper-scaling point.
//
// Run with:
//
//	go run ./examples/scalingstudy
package main

import (
	"fmt"
	"log"
	"math"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/nas"
	"repro/internal/units"
)

func main() {
	base := arch.MustGet(arch.Hydra)
	target := arch.MustGet(arch.Power6)
	counts := []int{16, 32, 64, 128}

	fmt.Println("Strong-scaling study: BT-MZ class C on the base machine")
	fmt.Println()

	pipe, err := core.NewPipeline(base, target, counts)
	if err != nil {
		log.Fatal(err)
	}
	app, err := pipe.CharacterizeApp(nas.BT, nas.ClassC, counts)
	if err != nil {
		log.Fatal(err)
	}

	// CCSM: fit per-task compute time against core count.
	ccsm, err := core.FitCCSM(app)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("CCSM fit: time(C) = %.3g · C^%.3f   (P = -1 would be ideal strong scaling)\n\n", ccsm.K, ccsm.P)
	fmt.Printf("%8s %14s %14s %10s %14s\n", "cores", "profiled", "CCSM fit", "γ from 16", "DataFromL3")
	for _, c := range counts {
		prof := app.Profiles[c].MeanCompute()
		fit := ccsm.TimeAt(c)
		fmt.Printf("%8d %14s %14s %10.3f %14.5f\n",
			c, units.FormatSeconds(prof), units.FormatSeconds(fit),
			ccsm.Gamma(16, c), app.Counters[c].ST.DataFromL3)
	}

	// ACSM: where does the footprint drop into a lower cache level?
	acsm := core.FitACSM(app)
	fmt.Println()
	if acsm.Valid && !math.IsInf(acsm.Ch, 1) {
		fmt.Printf("ACSM: data-from-L3 extrapolates to zero at Ch ≈ %.0f cores\n", acsm.Ch)
		fmt.Printf("      (beyond Ch the working set fits in L2: expect hyper-scaling,\n")
		fmt.Printf("       and the power-law γ becomes unreliable across that boundary)\n")
	} else {
		fmt.Println("ACSM: no cache-footprint transition within the profiled range")
	}

	// Demonstrate γ-scaled projection at an unprofiled count.
	const ck = 96
	proj, err := pipe.Project(app, ck)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nprojection at the unprofiled count %d (γ = %.3f", ck, proj.Gamma)
	if proj.HyperScaled {
		fmt.Printf(", crosses Ch — ACSM flags hyper-scaling")
	}
	fmt.Printf("):\n  %s on %s (compute %s + comm %s)\n",
		units.FormatSeconds(proj.Total), target.Name,
		units.FormatSeconds(proj.ComputeTime), units.FormatSeconds(proj.CommTime))

	// Compare against the brute-force answer: actually profile at 96.
	v, err := pipe.Validate(app, ck)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  measured %s → combined error %+.2f%%\n",
		units.FormatSeconds(v.MeasuredTotal), v.ErrCombined)
}
