// Quickstart: project one application onto one target machine and check
// the projection against a measured run.
//
// This is the smallest end-to-end use of the public API: SWAPP gathers
// benchmark data (SPEC CPU2006 + IMB) for the base/target pair, profiles
// BT-MZ on the base machine, and projects its runtime at 64 ranks onto the
// POWER6 cluster — without ever running the application there. The
// -validate step then runs it there anyway (we own the simulator!) to show
// the projection error.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	swapp "repro"
)

func main() {
	fmt.Println("SWAPP quickstart: BT-MZ class C, 64 ranks, Hydra → POWER6 575")
	fmt.Println()

	res, err := swapp.ProjectAndValidate(swapp.Request{
		Target: swapp.TargetPower6,
		Bench:  swapp.BT,
		Class:  swapp.ClassC,
		Ranks:  64,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println(res)
	fmt.Println()
	fmt.Println("surrogate benchmarks selected by the GA (Eq. 2):")
	for _, term := range res.Projection.Compute.Surrogate {
		fmt.Printf("  %-18s coefficient %.3f\n", term.Bench, term.Weight)
	}
	fmt.Println()
	v := res.Validation
	fmt.Printf("projection error: combined %+.2f%%, compute %+.2f%%, communication %+.2f%%\n",
		v.ErrCombined, v.ErrCompute, v.ErrComm)
	fmt.Println("(the paper reports 8.58% average |error| on this system)")
}
