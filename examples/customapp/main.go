// Customapp: project a user-defined application, not one of the NAS
// benchmarks.
//
// SWAPP's inputs are (a) hardware counters for the app's compute kernel on
// the base machine and (b) its MPI profile. This example builds both for a
// synthetic "ocean model": a custom compute signature (defined with the
// workload vocabulary) plus a custom communication pattern (a ring halo
// exchange with an Allreduce per step), runs them through the same
// measurement substrates the NAS apps use, and then drives the core
// projection pipeline directly — the path a real SWAPP user extending the
// framework to a new code would take.
//
// Run with:
//
//	go run ./examples/customapp
package main

import (
	"fmt"
	"log"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/hpm"
	"repro/internal/mpi"
	"repro/internal/mpiprof"
	"repro/internal/units"
	"repro/internal/workload"
)

// oceanKernel is the custom application's per-rank compute signature at a
// given rank count: a bandwidth-hungry stencil over a 2 GiB global state.
func oceanKernel(ranks int) *workload.Signature {
	total := &workload.Signature{
		Name:               "ocean-model",
		Instructions:       3e12,
		FPFraction:         0.33,
		MemFraction:        0.41,
		BranchFraction:     0.03,
		BranchMissRate:     0.004,
		ILP:                2.5,
		Footprint:          2 * units.GiB,
		Alpha:              0.85,
		StreamFraction:     0.55,
		RemoteFraction:     0.05,
		DialectSensitivity: 1,
	}
	return total.Partitioned(ranks)
}

// runOcean executes the custom app on a machine: halo exchange over a ring
// plus a per-step Allreduce, compute from the kernel signature. It returns
// the MPI profile — exactly what the paper's profiler would capture.
func runOcean(m *arch.Machine, ranks, steps int) (*mpiprof.Profile, units.Seconds, error) {
	sig := oceanKernel(ranks)
	active := m.CoresPerNode
	if ranks < active {
		active = ranks
	}
	counters, err := hpm.Run(sig, hpm.Config{Machine: m, ActiveTasksPerNode: active})
	if err != nil {
		return nil, 0, err
	}
	stepTime := counters.Runtime / float64(steps)

	w, err := mpi.NewWorld(m, ranks)
	if err != nil {
		return nil, 0, err
	}
	prof := mpiprof.New(ranks)
	w.SetObserver(prof)
	const halo = 96 * units.KiB
	makespan, err := w.Run(func(r *mpi.Rank) {
		next := (r.ID() + 1) % r.Size()
		prev := (r.ID() + r.Size() - 1) % r.Size()
		for s := 0; s < steps; s++ {
			a := r.Irecv(prev, halo, s)
			b := r.Irecv(next, halo, 100000+s)
			c := r.Isend(next, halo, s)
			d := r.Isend(prev, halo, 100000+s)
			r.Waitall(a, b, c, d)
			r.Compute(stepTime)
			r.Allreduce(16) // global CFL condition
		}
	})
	if err != nil {
		return nil, 0, err
	}
	return prof.Profile("ocean-model", m.Name, makespan), makespan, nil
}

func main() {
	base := arch.MustGet(arch.Hydra)
	target := arch.MustGet(arch.Westmere)
	counts := []int{16, 32, 64}
	const steps = 40

	fmt.Println("Custom application: 'ocean-model' (user-defined signature + halo pattern)")
	fmt.Printf("base %s → target %s\n\n", base.Name, target.Name)

	pipe, err := core.NewPipeline(base, target, counts)
	if err != nil {
		log.Fatal(err)
	}

	// Build the AppModel by hand: profiles + counters per core count —
	// the extension point for codes outside the NAS suite.
	app := &core.AppModel{
		Bench: "ocean", Class: 'C',
		Counts:   counts,
		Profiles: map[int]*mpiprof.Profile{},
		Counters: map[int]*core.CounterPair{},
	}
	for _, c := range counts {
		prof, _, err := runOcean(base, c, steps)
		if err != nil {
			log.Fatal(err)
		}
		app.Profiles[c] = prof
		sig := oceanKernel(c)
		active := base.CoresPerNode
		if c < active {
			active = c
		}
		st, err := hpm.Run(sig, hpm.Config{Machine: base, ActiveTasksPerNode: active,
			MeasureNoise: true, NoiseKey: fmt.Sprintf("ocean-%d-st", c)})
		if err != nil {
			log.Fatal(err)
		}
		smt, err := hpm.Run(sig, hpm.Config{Machine: base, Mode: hpm.SMT,
			ActiveTasksPerNode: active * base.Proc.SMTWays,
			MeasureNoise:       true, NoiseKey: fmt.Sprintf("ocean-%d-smt", c)})
		if err != nil {
			log.Fatal(err)
		}
		app.Counters[c] = &core.CounterPair{Ranks: c, ST: st, SMT: smt}
		fmt.Printf("profiled at %2d ranks: compute %s/task, comm %.2f%%\n",
			c, units.FormatSeconds(prof.MeanCompute()), 100*prof.CommFraction())
	}

	proj, err := pipe.Project(app, 64)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nprojection onto %s at 64 ranks: %s (compute %s + comm %s)\n",
		target.Name, units.FormatSeconds(proj.Total),
		units.FormatSeconds(proj.ComputeTime), units.FormatSeconds(proj.CommTime))
	fmt.Println("surrogate:")
	for _, t := range proj.Compute.Surrogate {
		fmt.Printf("  %-18s w=%.3f\n", t.Bench, t.Weight)
	}

	// Ground truth (only possible because the target is simulated).
	_, measured, err := runOcean(target, 64, steps)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmeasured on %s: %s → projection error %+.2f%%\n",
		target.Name, units.FormatSeconds(measured), 100*(proj.Total-measured)/measured)
}
