package swapp

import (
	"testing"

	"repro/internal/figures"
	"repro/internal/nas"
	"repro/internal/obs"
	"repro/internal/report"
)

// renderProjection runs one projection and returns its rendered report —
// the full user-visible output, so any numeric wobble shows up.
func renderProjection(t *testing.T, scope *obs.Scope, workers int) string {
	t.Helper()
	res, err := Project(Request{
		Target: TargetPower6, Bench: LU, Class: ClassC, Ranks: 16,
		Workers: workers, Obs: scope,
	})
	if err != nil {
		t.Fatal(err)
	}
	return report.Projection(res.Projection, nil)
}

// TestProjectionUnchangedByObs is the observability contract: recording
// spans and metrics must never feed back into the projection. The rendered
// output must be byte-identical with tracing enabled or disabled, at the
// serial and the concurrent worker counts.
func TestProjectionUnchangedByObs(t *testing.T) {
	if testing.Short() {
		t.Skip("four full projections; skipped with -short")
	}
	want := renderProjection(t, nil, 1)
	for _, c := range []struct {
		name    string
		obs     bool
		workers int
	}{
		{"obs off, workers 8", false, 8},
		{"obs on, workers 1", true, 1},
		{"obs on, workers 8", true, 8},
	} {
		var scope *obs.Scope
		if c.obs {
			scope = obs.New("test")
		}
		got := renderProjection(t, scope, c.workers)
		scope.End()
		if got != want {
			t.Errorf("%s: projection differs from obs-off serial baseline.\ngot:\n%s\nwant:\n%s", c.name, got, want)
		}
		if c.obs {
			if v, ok := scope.Metrics().Counter("ga.evaluations"); !ok || v <= 0 {
				t.Errorf("%s: observability was enabled but recorded nothing", c.name)
			}
		}
	}
}

// TestFigureUnchangedByObs extends the contract to the figures layer: a
// rendered figure is byte-identical with per-cell instrumentation on or
// off, serial or concurrent.
func TestFigureUnchangedByObs(t *testing.T) {
	if testing.Short() {
		t.Skip("full figure evaluation; skipped with -short")
	}
	render := func(scope *obs.Scope, workers int) string {
		r := figures.NewRunner()
		r.Workers = workers
		r.Obs = scope
		f, err := r.BenchFigure(nas.LU, figures.Targets()[1])
		if err != nil {
			t.Fatal(err)
		}
		return report.Figure(f)
	}
	want := render(nil, 1)
	for _, c := range []struct {
		name    string
		obs     bool
		workers int
	}{
		{"obs off, workers 8", false, 8},
		{"obs on, workers 1", true, 1},
		{"obs on, workers 8", true, 8},
	} {
		var scope *obs.Scope
		if c.obs {
			scope = obs.New("test")
		}
		got := render(scope, c.workers)
		scope.End()
		if got != want {
			t.Errorf("%s: figure differs from obs-off serial baseline.\ngot:\n%s\nwant:\n%s", c.name, got, want)
		}
		if c.obs {
			if v, ok := scope.Metrics().Counter("figures.cells"); !ok || v <= 0 {
				t.Errorf("%s: per-cell instrumentation recorded nothing", c.name)
			}
		}
	}
}
