#!/usr/bin/env bash
# bench_gate.sh — serving-layer regression gate: re-run the swappbench
# cache-hot and shared-base-warm scenarios and compare them against the
# committed BENCH_swappd.json. allocs/op is near-deterministic for
# single-server scenarios and gated at 20% on any host; p50 latency (the
# stable median — p95 of a small scenario is a single outlier sample)
# breathes with host load even at the median, so it gets a looser 50%
# tolerance, applied only when the committed baseline was recorded on
# comparable hardware (same CPU count and GOMAXPROCS). The peer-wired
# replica scenarios route real HTTP between servers, where retry and
# admission timing make even allocs/op breathe — they use the looser
# tolerance for both metrics.
# A scenario measured at a different op count than the baseline (e.g. the
# strict-mode 1-op cold run vs the 5-op baseline) contributes coverage
# only: allocs/op amortises fixed costs over ops and latency depends on
# queueing depth, so cross-count numbers are not comparable.
#
# A scenario present in the fresh run but absent from the committed
# baseline is a warning, not a failure: swappbench prints "not in
# baseline, skipped" and gates the rest, so adding a new scenario never
# breaks CI before its first baseline commit.
#
# The reverse direction IS gated in strict mode (-gate-strict, default on
# under CI): a baseline scenario that this run does not measure fails the
# gate, so a misconfigured knob cannot silently shrink coverage. Strict
# mode defaults on when $CI is set; override with BENCH_GATE_STRICT=0/1.
# To keep that promise satisfiable, strict mode also bumps the default
# cold and degraded op counts from 0 to 1 — enough to cover every
# baseline scenario without paying the full cold sweep.
#
# The script also gates the GA evaluation-kernel microbenchmarks
# (Benchmark{Kernel,ScoreAll}) against BENCH_kernel.json through
# cmd/benchstatgate, under the same rules: >20% ns/op or allocs/op
# regression fails (ns/op only on the baseline's hardware), missing from
# baseline warns. Regenerate that baseline with: make bench-kernel-baseline
#
# Knobs (env): BENCH_GATE_MAX_REGRESS (default 20),
# BENCH_GATE_MAX_LATENCY_REGRESS (default 50), BENCH_GATE_COLD /
# _WARM / _HOT / _DEGRADED / _MULTI / _SCALING to reshape the measured mix
# (defaults 0/10/200/0/8/12, cold/degraded raised to 1 each in strict
# mode: the cold scenario costs minutes and its allocs
# are pipeline-dominated, so the gate leans on the cheap, serving-sensitive
# scenarios; multi-replica-batch keeps the ring-forwarding path gated and
# cluster-scaling-2/4/8 the ring-size curve — op counts must match the
# committed baseline's, because allocs/op amortises the replicas' fixed
# background allocations over the ops).
set -euo pipefail

cd "$(dirname "$0")/.."

max=${BENCH_GATE_MAX_REGRESS:-20}
maxlat=${BENCH_GATE_MAX_LATENCY_REGRESS:-50}
strict=${BENCH_GATE_STRICT:-${CI:+1}}
strict=${strict:-0}

# Strict mode gates coverage, so every baseline scenario must actually be
# measured: turn the expensive scenarios on at 1 op each (both are
# heavyweight per-request pipelines whose allocs/op does not depend on the
# op count) unless the caller pinned them explicitly.
cold_default=0
degraded_default=0
if [ "$strict" = "1" ]; then
    cold_default=1
    degraded_default=1
fi
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

# Kernel microbenchmarks first: cheap, and a broken hot path should fail
# before the minutes-long serving scenarios run.
# -count=3: benchstatgate takes the per-metric minimum across runs, which
# rides out scheduler noise on shared single-CPU CI boxes.
go test -run '^$' -bench 'BenchmarkKernel$|BenchmarkScoreAll' -benchmem \
    -benchtime "${BENCH_GATE_KERNEL_BENCHTIME:-300ms}" -count 3 \
    ./internal/core ./internal/ga > "$tmp/kernel_bench.txt"
go run ./cmd/benchstatgate -baseline BENCH_kernel.json -max-regress "$max" "$tmp/kernel_bench.txt"

strict_flag=()
if [ "$strict" = "1" ]; then
    strict_flag=(-gate-strict)
fi

go build -o "$tmp/swappbench" ./cmd/swappbench
"$tmp/swappbench" \
    -cold "${BENCH_GATE_COLD:-$cold_default}" \
    -warm "${BENCH_GATE_WARM:-10}" \
    -hot "${BENCH_GATE_HOT:-200}" \
    -degraded "${BENCH_GATE_DEGRADED:-$degraded_default}" \
    -multi "${BENCH_GATE_MULTI:-8}" \
    -scaling "${BENCH_GATE_SCALING:-12}" \
    -out "$tmp/run.json" \
    -gate BENCH_swappd.json \
    -max-regress "$max" \
    -max-latency-regress "$maxlat" \
    ${strict_flag[@]+"${strict_flag[@]}"}
echo "bench-gate: pass (max tolerated regression ${max}% allocs / ${maxlat}% latency, strict=${strict})"
