#!/usr/bin/env bash
# bench_gate.sh — serving-layer regression gate: re-run the swappbench
# cache-hot and shared-base-warm scenarios and compare them against the
# committed BENCH_swappd.json, failing on >20% regressions. allocs/op is
# gated everywhere; p95 latency is gated only when the committed baseline
# was recorded on comparable hardware (same CPU count and GOMAXPROCS) —
# swappbench skips latency gates across hosts on its own.
#
# A scenario present in the fresh run but absent from the committed
# baseline is a warning, not a failure: swappbench prints "not in
# baseline, skipped" and gates the rest, so adding a new scenario never
# breaks CI before its first baseline commit.
#
# The script also gates the GA evaluation-kernel microbenchmarks
# (Benchmark{Kernel,ScoreAll}) against BENCH_kernel.json through
# cmd/benchstatgate, under the same rules: >20% ns/op or allocs/op
# regression fails (ns/op only on the baseline's hardware), missing from
# baseline warns. Regenerate that baseline with: make bench-kernel-baseline
#
# Knobs (env): BENCH_GATE_MAX_REGRESS (default 20), BENCH_GATE_COLD /
# _WARM / _HOT / _DEGRADED / _MULTI to reshape the measured mix (defaults
# 0/10/200/0/8: the cold scenario costs minutes and its allocs are
# pipeline-dominated, so the gate leans on the cheap, serving-sensitive
# scenarios; multi-replica-batch keeps the ring-forwarding path gated —
# its op count must match the committed baseline's, because allocs/op
# amortises the replicas' fixed background allocations over the ops).
set -euo pipefail

cd "$(dirname "$0")/.."

max=${BENCH_GATE_MAX_REGRESS:-20}
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

# Kernel microbenchmarks first: cheap, and a broken hot path should fail
# before the minutes-long serving scenarios run.
# -count=3: benchstatgate takes the per-metric minimum across runs, which
# rides out scheduler noise on shared single-CPU CI boxes.
go test -run '^$' -bench 'BenchmarkKernel$|BenchmarkScoreAll' -benchmem \
    -benchtime "${BENCH_GATE_KERNEL_BENCHTIME:-300ms}" -count 3 \
    ./internal/core ./internal/ga > "$tmp/kernel_bench.txt"
go run ./cmd/benchstatgate -baseline BENCH_kernel.json -max-regress "$max" "$tmp/kernel_bench.txt"

go build -o "$tmp/swappbench" ./cmd/swappbench
"$tmp/swappbench" \
    -cold "${BENCH_GATE_COLD:-0}" \
    -warm "${BENCH_GATE_WARM:-10}" \
    -hot "${BENCH_GATE_HOT:-200}" \
    -degraded "${BENCH_GATE_DEGRADED:-0}" \
    -multi "${BENCH_GATE_MULTI:-8}" \
    -out "$tmp/run.json" \
    -gate BENCH_swappd.json \
    -max-regress "$max"
echo "bench-gate: pass (max tolerated regression ${max}%)"
