#!/usr/bin/env bash
# bench_gate.sh — serving-layer regression gate: re-run the swappbench
# cache-hot and shared-base-warm scenarios and compare them against the
# committed BENCH_swappd.json, failing on >20% regressions. allocs/op is
# gated everywhere; p95 latency is gated only when the committed baseline
# was recorded on comparable hardware (same CPU count and GOMAXPROCS) —
# swappbench skips latency gates across hosts on its own.
#
# A scenario present in the fresh run but absent from the committed
# baseline is a warning, not a failure: swappbench prints "not in
# baseline, skipped" and gates the rest, so adding a new scenario never
# breaks CI before its first baseline commit.
#
# Knobs (env): BENCH_GATE_MAX_REGRESS (default 20), BENCH_GATE_COLD /
# _WARM / _HOT / _DEGRADED / _MULTI to reshape the measured mix (defaults
# 0/10/200/0/8: the cold scenario costs minutes and its allocs are
# pipeline-dominated, so the gate leans on the cheap, serving-sensitive
# scenarios; multi-replica-batch keeps the ring-forwarding path gated —
# its op count must match the committed baseline's, because allocs/op
# amortises the replicas' fixed background allocations over the ops).
set -euo pipefail

cd "$(dirname "$0")/.."

max=${BENCH_GATE_MAX_REGRESS:-20}
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

go build -o "$tmp/swappbench" ./cmd/swappbench
"$tmp/swappbench" \
    -cold "${BENCH_GATE_COLD:-0}" \
    -warm "${BENCH_GATE_WARM:-10}" \
    -hot "${BENCH_GATE_HOT:-200}" \
    -degraded "${BENCH_GATE_DEGRADED:-0}" \
    -multi "${BENCH_GATE_MULTI:-8}" \
    -out "$tmp/run.json" \
    -gate BENCH_swappd.json \
    -max-regress "$max"
echo "bench-gate: pass (max tolerated regression ${max}%)"
