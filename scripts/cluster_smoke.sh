#!/usr/bin/env bash
# cluster_smoke.sh — end-to-end smoke test of swappd's peer-aware mode with
# gossip membership and warm failover (DESIGN.md §13, §16): build swappd,
# start three replicas wired into one consistent-hash ring running the SWIM
# detector at smoke cadence, run a grouped /v1/batch round-trip through one
# node, then:
#
#   1. compute one result on its ring owner (found via X-Swapp-Peer) so the
#      owner replicates the rendered bytes to its successor,
#   2. SIGKILL that owner, wait for gossip to shrink the survivors' rings,
#      and require a survivor to answer byte-identically from the replica
#      vault — asserted through cluster.replica_hits in /debug/vars,
#   3. re-run the grouped batch on a survivor, byte-identical to the
#      healthy run,
#   4. restart the killed replica and wait for gossip to heal the ring back
#      to three members without any restarts elsewhere,
#   5. drain everything with SIGTERM and require clean exits.
set -euo pipefail

cd "$(dirname "$0")/.."
tmp=$(mktemp -d)
pids=()
cleanup() {
    for pid in "${pids[@]:-}"; do
        [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
    done
    rm -rf "$tmp"
}
trap cleanup EXIT

go build -o "$tmp/swappd" ./cmd/swappd

# Peer-aware mode needs every replica's address up front, so reserve three
# free ports before starting anything (bind-then-close; the race window is
# harmless on a loopback smoke box).
read -r p1 p2 p3 < <(python3 - <<'EOF'
import socket
socks = [socket.socket() for _ in range(3)]
for s in socks:
    s.bind(("127.0.0.1", 0))
print(*(s.getsockname()[1] for s in socks))
for s in socks:
    s.close()
EOF
)
ports=("" "$p1" "$p2" "$p3")
u1="http://127.0.0.1:$p1"; u2="http://127.0.0.1:$p2"; u3="http://127.0.0.1:$p3"
urls=("" "$u1" "$u2" "$u3")

start_replica() { # start_replica <index>
    local i=$1 port=${ports[$1]} peers=""
    for k in 1 2 3; do
        [ "$k" = "$i" ] && continue
        peers="${peers:+$peers,}${urls[$k]}"
    done
    # Gossip at smoke cadence: membership changes land in ~1s instead of
    # the production detector's several seconds.
    "$tmp/swappd" -addr "127.0.0.1:$port" -self "${urls[$i]}" -peers "$peers" \
        -gossip-interval 200ms >"$tmp/out$i.log" 2>"$tmp/err$i.log" &
    pids[$i]=$!
}
# wait_for bounds every polling loop in this script: re-run a predicate
# command at 10Hz until it succeeds or the budget runs out, then fail with
# a message naming what never happened — a CI hang becomes a diagnosis.
wait_for() { # wait_for <tries> <what> <cmd...>
    local tries=$1 what=$2
    shift 2
    for _ in $(seq 1 "$tries"); do
        "$@" && return 0
        sleep 0.1
    done
    echo "cluster-smoke: timeout waiting for $what" >&2
    return 1
}
healthy() { curl -fsS -m 5 "http://127.0.0.1:$1/healthz" >/dev/null 2>&1; }
wait_healthy() { # wait_healthy <port>
    wait_for 100 "replica on port $1 to become healthy" healthy "$1"
}
metric() { # metric <base-url> <counters|gauges> <name> -> integer value (0 when absent)
    curl -fsS -m 5 "$1/debug/vars" 2>/dev/null | python3 -c '
import json, sys
doc = json.load(sys.stdin)
for m in doc.get("swapp.metrics", {}).get(sys.argv[1], []):
    if m["name"] == sys.argv[2]:
        print(int(m["value"])); break
else:
    print(0)
' "$2" "$3" || echo 0
}
gauge_is() { [ "$(metric "$1" gauges "$2")" = "$3" ]; }
wait_gauge() { # wait_gauge <base-url> <name> <want> <what>
    wait_for 100 "$4 ($2=$3 at $1)" gauge_is "$1" "$2" "$3"
}

start_replica 1; start_replica 2; start_replica 3
wait_healthy "$p1"; wait_healthy "$p2"; wait_healthy "$p3"
echo "cluster-smoke: 3 replicas up ($u1 $u2 $u3), gossip at 200ms"

# Four requests hashing to two (base, target) groups: the batch endpoint
# must dedupe the characterisation work per group and the ring must route
# each group to its owner.
batch='{"requests":[
  {"target":"power6-575","bench":"BT-MZ","class":"C","ranks":16},
  {"target":"power6-575","bench":"SP-MZ","class":"C","ranks":16},
  {"target":"bgp","bench":"BT-MZ","class":"C","ranks":16},
  {"target":"bgp","bench":"LU-MZ","class":"C","ranks":16}]}'

check_batch() { # check_batch <body-file>
    python3 - "$1" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
results = doc["results"]
assert len(results) == 4, f"{len(results)} results, want 4"
bad = [r for r in results if r["status"] != 200]
assert not bad, f"failed entries: {bad}"
assert doc["groups"] == 2, f'{doc["groups"]} groups, want 2'
EOF
}

curl -fsS -m 120 -X POST "$u1/v1/batch" -d "$batch" -o "$tmp/batch1.json"
check_batch "$tmp/batch1.json"
echo "cluster-smoke: grouped batch round-trip ok"

# --- Warm failover ---------------------------------------------------------
# Compute one result through replica 1; X-Swapp-Peer names the owner when
# the request was forwarded, silence means replica 1 owns the group itself.
req='{"target":"westmere-x5670","bench":"BT-MZ","class":"C","ranks":16}'
curl -fsS -m 120 -D "$tmp/warm.hdr" -X POST "$u1/v1/project" -d "$req" -o "$tmp/warm.json"
owner_url=$(awk 'tolower($1)=="x-swapp-peer:"{print $2}' "$tmp/warm.hdr" | tr -d '\r')
owner_url=${owner_url:-$u1}
owner=0
for k in 1 2 3; do [ "${urls[$k]}" = "$owner_url" ] && owner=$k; done
[ "$owner" != 0 ] || { echo "cluster-smoke: unrecognised owner $owner_url" >&2; exit 1; }
survivors=()
for k in 1 2 3; do [ "$k" != "$owner" ] && survivors+=("$k"); done

# The owner's replication push is asynchronous: wait until the rendered
# bytes landed in a survivor's vault before pulling the plug.
replicated() {
    local stored=0 k
    for k in "${survivors[@]}"; do
        stored=$((stored + $(metric "${urls[$k]}" counters cluster.replica_stores)))
    done
    [ "$stored" -ge 1 ]
}
wait_for 100 "replica $owner to replicate the warm result to a survivor (cluster.replica_stores >= 1)" replicated
echo "cluster-smoke: warm result computed on replica $owner and replicated"

# SIGKILL the owner — no drain, the crash case — and wait for gossip to
# evict it from both survivors' routing rings.
kill -KILL "${pids[$owner]}"
wait "${pids[$owner]}" 2>/dev/null || true
pids[$owner]=""
for k in "${survivors[@]}"; do
    wait_gauge "${urls[$k]}" cluster.ring_size 2 "gossip to evict the dead owner"
done
echo "cluster-smoke: gossip evicted the dead owner from both survivors"

# Every surviving entry point must now answer the warm request with the
# dead owner's exact bytes, served from the replica vault, not recomputed.
for k in "${survivors[@]}"; do
    curl -fsS -m 120 -D "$tmp/fo$k.hdr" -X POST "${urls[$k]}/v1/project" -d "$req" -o "$tmp/fo$k.json"
    cmp -s "$tmp/warm.json" "$tmp/fo$k.json" || {
        echo "cluster-smoke: replica $k served different bytes than the dead owner" >&2; exit 1; }
    grep -qi '^x-cache: replica' "$tmp/fo$k.hdr" || {
        echo "cluster-smoke: replica $k response not marked X-Cache: replica" >&2
        cat "$tmp/fo$k.hdr" >&2; exit 1; }
done
hits=0
for k in "${survivors[@]}"; do
    hits=$((hits + $(metric "${urls[$k]}" counters cluster.replica_hits)))
done
[ "$hits" -ge 1 ] || { echo "cluster-smoke: cluster.replica_hits = $hits, want >= 1" >&2; exit 1; }
echo "cluster-smoke: warm failover served byte-identically (replica_hits=$hits)"

# The grouped batch still answers byte-identically through a survivor.
s1=${survivors[0]}
curl -fsS -m 120 -X POST "${urls[$s1]}/v1/batch" -d "$batch" -o "$tmp/batch2.json"
check_batch "$tmp/batch2.json"
cmp -s "$tmp/batch1.json" "$tmp/batch2.json" || {
    echo "cluster-smoke: failover batch differs from the healthy one" >&2; exit 1; }
echo "cluster-smoke: survivor answered the batch byte-identically after the crash"

# Rejoin: restart the crashed owner and require gossip to heal both
# survivors' rings back to three members — no restarts, no operator action.
start_replica "$owner"
wait_healthy "${ports[$owner]}"
for k in "${survivors[@]}"; do
    wait_gauge "${urls[$k]}" cluster.ring_size 3 "gossip to readmit the rejoined replica"
done
curl -fsS -m 120 -X POST "$u1/v1/batch" -d "$batch" -o "$tmp/batch3.json"
check_batch "$tmp/batch3.json"
cmp -s "$tmp/batch1.json" "$tmp/batch3.json" || {
    echo "cluster-smoke: post-rejoin batch differs from the healthy one" >&2; exit 1; }
echo "cluster-smoke: replica rejoined via gossip, batch ok"

# Clean drain everywhere.
for i in 1 2 3; do
    kill -TERM "${pids[$i]}"
done
for i in 1 2 3; do
    wait "${pids[$i]}" || { echo "cluster-smoke: replica $i drain exited non-zero" >&2; exit 1; }
    pids[$i]=""
    grep -q drained "$tmp/err$i.log" || {
        echo "cluster-smoke: replica $i missing drain log" >&2; exit 1; }
done
echo "cluster-smoke: ok (routing, gossip failover, warm replica serve, rejoin, clean drain)"
