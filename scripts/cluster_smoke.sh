#!/usr/bin/env bash
# cluster_smoke.sh — end-to-end smoke test of swappd's peer-aware mode
# (DESIGN.md §13): build swappd, start three replicas wired into one
# consistent-hash ring, run a grouped /v1/batch round-trip through one
# node, kill the other two and require the surviving replica to answer
# the same batch byte-identically via local fallback, rejoin the killed
# replicas and round-trip once more, then drain everything with SIGTERM
# and require clean exits.
set -euo pipefail

cd "$(dirname "$0")/.."
tmp=$(mktemp -d)
pids=()
cleanup() {
    for pid in "${pids[@]:-}"; do
        [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
    done
    rm -rf "$tmp"
}
trap cleanup EXIT

go build -o "$tmp/swappd" ./cmd/swappd

# Peer-aware mode needs every replica's address up front, so reserve three
# free ports before starting anything (bind-then-close; the race window is
# harmless on a loopback smoke box).
read -r p1 p2 p3 < <(python3 - <<'EOF'
import socket
socks = [socket.socket() for _ in range(3)]
for s in socks:
    s.bind(("127.0.0.1", 0))
print(*(s.getsockname()[1] for s in socks))
for s in socks:
    s.close()
EOF
)
u1="http://127.0.0.1:$p1"; u2="http://127.0.0.1:$p2"; u3="http://127.0.0.1:$p3"

start_replica() { # start_replica <index> <port> <peer-url> <peer-url>
    local i=$1 port=$2
    "$tmp/swappd" -addr "127.0.0.1:$port" -self "http://127.0.0.1:$port" \
        -peers "$3,$4" >"$tmp/out$i.log" 2>"$tmp/err$i.log" &
    pids[$i]=$!
}
wait_healthy() { # wait_healthy <port>
    for _ in $(seq 1 100); do
        curl -fsS "http://127.0.0.1:$1/healthz" >/dev/null 2>&1 && return 0
        sleep 0.1
    done
    echo "cluster-smoke: replica on port $1 never became healthy" >&2
    return 1
}

start_replica 1 "$p1" "$u2" "$u3"
start_replica 2 "$p2" "$u1" "$u3"
start_replica 3 "$p3" "$u1" "$u2"
wait_healthy "$p1"; wait_healthy "$p2"; wait_healthy "$p3"
echo "cluster-smoke: 3 replicas up ($u1 $u2 $u3)"

# Four requests hashing to two (base, target) groups: the batch endpoint
# must dedupe the characterisation work per group and the ring must route
# each group to its owner.
batch='{"requests":[
  {"target":"power6-575","bench":"BT-MZ","class":"C","ranks":16},
  {"target":"power6-575","bench":"SP-MZ","class":"C","ranks":16},
  {"target":"bgp","bench":"BT-MZ","class":"C","ranks":16},
  {"target":"bgp","bench":"LU-MZ","class":"C","ranks":16}]}'

check_batch() { # check_batch <body-file>
    python3 - "$1" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
results = doc["results"]
assert len(results) == 4, f"{len(results)} results, want 4"
bad = [r for r in results if r["status"] != 200]
assert not bad, f"failed entries: {bad}"
assert doc["groups"] == 2, f'{doc["groups"]} groups, want 2'
EOF
}

curl -fsS -X POST "$u1/v1/batch" -d "$batch" -o "$tmp/batch1.json"
check_batch "$tmp/batch1.json"
echo "cluster-smoke: grouped batch round-trip ok"

# Crash the two peers (no drain) and require the survivor to degrade to
# local computation with byte-identical answers.
kill -KILL "${pids[2]}" "${pids[3]}"
wait "${pids[2]}" 2>/dev/null || true
wait "${pids[3]}" 2>/dev/null || true
pids[2]=""; pids[3]=""
curl -fsS -X POST "$u1/v1/batch" -d "$batch" -o "$tmp/batch2.json"
check_batch "$tmp/batch2.json"
cmp -s "$tmp/batch1.json" "$tmp/batch2.json" || {
    echo "cluster-smoke: failover batch differs from the healthy one" >&2; exit 1; }
echo "cluster-smoke: survivor answered byte-identically after peer crash"

# Rejoin the crashed replicas and round-trip once more through the ring.
start_replica 2 "$p2" "$u1" "$u3"
start_replica 3 "$p3" "$u1" "$u2"
wait_healthy "$p2"; wait_healthy "$p3"
curl -fsS -X POST "$u1/v1/batch" -d "$batch" -o "$tmp/batch3.json"
check_batch "$tmp/batch3.json"
cmp -s "$tmp/batch1.json" "$tmp/batch3.json" || {
    echo "cluster-smoke: post-rejoin batch differs from the healthy one" >&2; exit 1; }
echo "cluster-smoke: peers rejoined, batch ok"

# Clean drain everywhere.
for i in 1 2 3; do
    kill -TERM "${pids[$i]}"
done
for i in 1 2 3; do
    wait "${pids[$i]}" || { echo "cluster-smoke: replica $i drain exited non-zero" >&2; exit 1; }
    pids[$i]=""
    grep -q drained "$tmp/err$i.log" || {
        echo "cluster-smoke: replica $i missing drain log" >&2; exit 1; }
done
echo "cluster-smoke: ok (routing, failover, rejoin, clean drain)"
