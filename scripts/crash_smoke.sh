#!/usr/bin/env bash
# crash_smoke.sh — end-to-end kill -9 recovery smoke test of the durable
# swappd (DESIGN.md §17): build swappd, then
#
#   1. run a control job on a plain in-memory instance and keep its result
#      bytes as the reference,
#   2. start a replica with -data-dir and a 'ga.eval=delay:…' fault so the
#      GA search is slow enough to catch mid-flight, submit the same job,
#      wait until the WAL holds the submission plus a healthy batch of
#      checkpoints, and SIGKILL the process mid-generation — no drain, no
#      flush, the real crash case,
#   3. restart swappd on the same data dir (fault disarmed) and require the
#      journal replay to resurrect the job under its original ID
#      (jobs.recovered >= 1), resume it from its newest checkpoints, and
#      finish with a result document byte-identical to the control run.
set -euo pipefail

cd "$(dirname "$0")/.."
tmp=$(mktemp -d)
pid=""
cleanup() {
    [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT

go build -o "$tmp/swappd" ./cmd/swappd

# The job: a real projection whose GA ensemble produces per-generation
# checkpoints; identical across all three runs.
job='{"op":"project","request":{"target":"power6-575","bench":"LU-MZ","class":"C","ranks":16}}'

start_daemon() { # start_daemon <logname> [extra swappd args...]
    local log=$1; shift
    "$tmp/swappd" -addr 127.0.0.1:0 "$@" >"$tmp/$log.out" 2>"$tmp/$log.err" &
    pid=$!
    addr=""
    for _ in $(seq 1 100); do
        addr=$(sed -n 's/^swappd listening on //p' "$tmp/$log.out")
        [ -n "$addr" ] && break
        sleep 0.1
    done
    if [ -z "$addr" ]; then
        echo "crash-smoke: swappd ($log) never reported its address" >&2
        cat "$tmp/$log.err" >&2
        exit 1
    fi
}

metric() { # metric <counters|gauges> <name> -> integer value (0 when absent)
    curl -fsS -m 5 "http://$addr/debug/vars" 2>/dev/null | python3 -c '
import json, sys
doc = json.load(sys.stdin)
for m in doc.get("swapp.metrics", {}).get(sys.argv[1], []):
    if m["name"] == sys.argv[2]:
        print(int(m["value"])); break
else:
    print(0)
' "$1" "$2" || echo 0
}

submit_job() { # -> job id on stdout
    curl -fsS -m 10 -X POST "http://$addr/v1/jobs" -d "$job" |
        python3 -c 'import json, sys; print(json.load(sys.stdin)["id"])'
}

job_state() { # job_state <id>
    curl -fsS -m 5 "http://$addr/v1/jobs/$1" |
        python3 -c 'import json, sys; print(json.load(sys.stdin)["state"])'
}

wait_done() { # wait_done <id> <tries>
    local state=""
    for _ in $(seq 1 "$2"); do
        state=$(job_state "$1")
        case "$state" in
        done) return 0 ;;
        failed | cancelled | handed_off)
            echo "crash-smoke: job $1 ended as '$state', want done" >&2
            return 1
            ;;
        esac
        sleep 0.2
    done
    echo "crash-smoke: job $1 still '$state' after $2 polls" >&2
    return 1
}

# --- Control: the same job, uninterrupted, in memory -----------------------
start_daemon control
ctrl_id=$(submit_job)
wait_done "$ctrl_id" 300
curl -fsS -m 10 "http://$addr/v1/jobs/$ctrl_id/result" -o "$tmp/control.json"
kill -TERM "$pid" && wait "$pid" || {
    echo "crash-smoke: control drain exited non-zero" >&2
    exit 1
}
pid=""
echo "crash-smoke: control result captured ($(wc -c <"$tmp/control.json") bytes)"

# --- Crash: durable replica, killed mid-search -----------------------------
# The delay fault slows every GA evaluation without touching its outcome
# (Fire sleeps, returns nil), stretching a sub-second search into many
# seconds so the SIGKILL reliably lands between checkpoints.
start_daemon crash -data-dir "$tmp/data" -faults 'ga.eval=delay:2ms'
grep -q 'FAULT INJECTION ARMED' "$tmp/crash.err" || {
    echo "crash-smoke: delay fault never armed" >&2
    exit 1
}
crash_id=$(submit_job)

# Wait until the journal holds the submission plus several checkpoint
# records; killing earlier would test cold re-submission, not resume.
records=0
for _ in $(seq 1 150); do
    records=$(metric counters durable.wal_records)
    [ "$records" -ge 10 ] && break
    sleep 0.1
done
[ "$records" -ge 10 ] || {
    echo "crash-smoke: journal has only $records record(s) after 15s, want >= 10" >&2
    exit 1
}
state=$(job_state "$crash_id")
[ "$state" = running ] || [ "$state" = queued ] || {
    echo "crash-smoke: job already '$state' before the kill — delay too short to catch it mid-flight" >&2
    exit 1
}
kill -KILL "$pid"
wait "$pid" 2>/dev/null || true
pid=""
echo "crash-smoke: SIGKILLed mid-search with $records journal record(s)"

# --- Recovery: same data dir, fault disarmed -------------------------------
start_daemon recover -data-dir "$tmp/data"
recovered=$(metric counters jobs.recovered)
[ "$recovered" -ge 1 ] || {
    echo "crash-smoke: jobs.recovered = $recovered, want >= 1" >&2
    cat "$tmp/recover.err" >&2
    exit 1
}
state=$(job_state "$crash_id") || {
    echo "crash-smoke: recovered daemon does not know job $crash_id" >&2
    exit 1
}
echo "crash-smoke: job $crash_id resurrected from the journal (state: $state)"
wait_done "$crash_id" 300
curl -fsS -m 10 "http://$addr/v1/jobs/$crash_id/result" -o "$tmp/recovered.json"
cmp -s "$tmp/control.json" "$tmp/recovered.json" || {
    echo "crash-smoke: recovered result differs from the uninterrupted control" >&2
    diff <(head -c 400 "$tmp/control.json") <(head -c 400 "$tmp/recovered.json") >&2 || true
    exit 1
}
kill -TERM "$pid" && wait "$pid" || {
    echo "crash-smoke: recovery drain exited non-zero" >&2
    exit 1
}
pid=""
echo "crash-smoke: ok (kill -9 mid-search, journal replay, checkpoint resume, byte-identical result)"
