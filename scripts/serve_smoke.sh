#!/usr/bin/env bash
# serve_smoke.sh — end-to-end smoke test of the swappd projection service:
# build it, start it on a free port, check /healthz, run one real
# /v1/project round-trip twice, assert the second answer comes from the
# cache with an identical body, then drain with SIGTERM and require a
# clean exit.
set -euo pipefail

cd "$(dirname "$0")/.."
tmp=$(mktemp -d)
pid=""
cleanup() {
    [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT

go build -o "$tmp/swappd" ./cmd/swappd
"$tmp/swappd" -addr 127.0.0.1:0 >"$tmp/out.log" 2>"$tmp/err.log" &
pid=$!

addr=""
for _ in $(seq 1 100); do
    addr=$(sed -n 's/^swappd listening on //p' "$tmp/out.log")
    [ -n "$addr" ] && break
    sleep 0.1
done
if [ -z "$addr" ]; then
    echo "serve-smoke: swappd never reported its address" >&2
    cat "$tmp/err.log" >&2
    exit 1
fi
echo "serve-smoke: swappd on $addr"

curl -fsS "http://$addr/healthz" >/dev/null
curl -fsS "http://$addr/readyz" >/dev/null

req='{"target":"power6-575","bench":"LU-MZ","class":"C","ranks":16}'
curl -fsS -X POST "http://$addr/v1/project" -d "$req" \
    -o "$tmp/first.json" -D "$tmp/first.hdr"
grep -qi '^x-cache: miss' "$tmp/first.hdr" || {
    echo "serve-smoke: first request was not a cache miss" >&2; exit 1; }
grep -q '"total_seconds"' "$tmp/first.json" || {
    echo "serve-smoke: response is not a projection" >&2; exit 1; }

curl -fsS -X POST "http://$addr/v1/project" -d "$req" \
    -o "$tmp/second.json" -D "$tmp/second.hdr"
grep -qi '^x-cache: hit' "$tmp/second.hdr" || {
    echo "serve-smoke: second request was not a cache hit" >&2; exit 1; }
cmp -s "$tmp/first.json" "$tmp/second.json" || {
    echo "serve-smoke: cached body differs from the original" >&2; exit 1; }

kill -TERM "$pid"
wait "$pid" || { echo "serve-smoke: drain exited non-zero" >&2; exit 1; }
pid=""
grep -q drained "$tmp/err.log" || {
    echo "serve-smoke: missing drain log" >&2; exit 1; }
echo "serve-smoke: ok (cached round-trip + clean drain)"

# Second act: fault injection. Restart with one armed evaluation panic;
# the first request must 500 without killing the daemon, health must stay
# green, and the identical retry must evaluate normally.
"$tmp/swappd" -addr 127.0.0.1:0 -faults 'server.eval=panic#1' \
    >"$tmp/out2.log" 2>"$tmp/err2.log" &
pid=$!

addr=""
for _ in $(seq 1 100); do
    addr=$(sed -n 's/^swappd listening on //p' "$tmp/out2.log")
    [ -n "$addr" ] && break
    sleep 0.1
done
if [ -z "$addr" ]; then
    echo "serve-smoke: faulted swappd never reported its address" >&2
    cat "$tmp/err2.log" >&2
    exit 1
fi
echo "serve-smoke: faulted swappd on $addr"
grep -q 'FAULT INJECTION ARMED' "$tmp/err2.log" || {
    echo "serve-smoke: missing armed warning on stderr" >&2; exit 1; }

status=$(curl -sS -o "$tmp/fault.json" -w '%{http_code}' \
    -X POST "http://$addr/v1/project" -d "$req")
[ "$status" = 500 ] || {
    echo "serve-smoke: injected panic returned $status, want 500" >&2; exit 1; }
grep -qi panic "$tmp/fault.json" || {
    echo "serve-smoke: 500 body does not mention the panic" >&2; exit 1; }

curl -fsS "http://$addr/healthz" >/dev/null || {
    echo "serve-smoke: daemon unhealthy after injected panic" >&2; exit 1; }
curl -fsS -X POST "http://$addr/v1/project" -d "$req" -o "$tmp/retry.json"
grep -q '"total_seconds"' "$tmp/retry.json" || {
    echo "serve-smoke: retry after exhausted fault is not a projection" >&2; exit 1; }

kill -TERM "$pid"
wait "$pid" || { echo "serve-smoke: faulted drain exited non-zero" >&2; exit 1; }
pid=""
echo "serve-smoke: ok (injected panic contained, retry served, clean drain)"
