package swapp

// The benchmark harness regenerates every table and figure of the paper's
// evaluation (go test -bench=.) and measures the ablations DESIGN.md calls
// out plus the simulator's own throughput. Scientific outcomes (error
// percentages) are attached to each benchmark as custom metrics, so one
// run both exercises the code paths and reports the reproduction numbers.
//
// The expensive artifacts — benchmark pipelines, app characterisations,
// validations — are computed once per process in untimed setup and shared.

import (
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/des"
	"repro/internal/figures"
	"repro/internal/imb"
	"repro/internal/mpi"
	"repro/internal/mpiprof"
	"repro/internal/nas"
	"repro/internal/report"
	"repro/internal/units"
)

// --- shared fixtures -------------------------------------------------------

var (
	runnerOnce sync.Once
	runner     *figures.Runner
)

// evalRunner returns the process-wide evaluation runner.
func evalRunner() *figures.Runner {
	runnerOnce.Do(func() { runner = figures.NewRunner() })
	return runner
}

// figCache memoises regenerated figures by id.
var (
	figMu    sync.Mutex
	figCache = map[string]*figures.Figure{}
)

func figureByNumber(b *testing.B, n int) *figures.Figure {
	b.Helper()
	figMu.Lock()
	defer figMu.Unlock()
	id := fmt.Sprintf("fig%d", n)
	if f, ok := figCache[id]; ok {
		return f
	}
	r := evalRunner()
	var f *figures.Figure
	var err error
	switch n {
	case 3:
		f, err = r.BenchFigure(nas.BT, arch.BlueGene)
	case 4:
		f, err = r.BenchFigure(nas.BT, arch.Power6)
	case 5:
		f, err = r.BenchFigure(nas.BT, arch.Westmere)
	case 6:
		f, err = r.LUFigure()
	case 7:
		f, err = r.BenchFigure(nas.SP, arch.BlueGene)
	case 8:
		f, err = r.BenchFigure(nas.SP, arch.Power6)
	case 9:
		f, err = r.BenchFigure(nas.SP, arch.Westmere)
	}
	if err != nil {
		b.Fatal(err)
	}
	figCache[id] = f
	return f
}

// benchFigure regenerates figure n in setup, then times rendering and
// reports the figure's scientific outcome as metrics.
func benchFigure(b *testing.B, n int) {
	f := figureByNumber(b, n)
	b.ResetTimer()
	var sink int
	for i := 0; i < b.N; i++ {
		sink += len(report.Figure(f))
	}
	_ = sink
	b.ReportMetric(f.MeanCombined(), "mean|err|%")
}

// --- Tables and Figures ------------------------------------------------------

func BenchmarkTable2(b *testing.B) {
	var sink int
	for i := 0; i < b.N; i++ {
		sink += len(report.Table2())
	}
	_ = sink
}

func BenchmarkTable1(b *testing.B) {
	// One representative Table 1 measurement per iteration: the LU-MZ
	// class C profile on the base machine.
	base := arch.MustGet(arch.Hydra)
	var comm float64
	for i := 0; i < b.N; i++ {
		res, err := nas.Run(nas.Config{Bench: nas.LU, Class: nas.ClassC, Ranks: 16}, base)
		if err != nil {
			b.Fatal(err)
		}
		comm = 100 * res.Profile.CommFraction()
	}
	b.ReportMetric(comm, "comm%")
}

func BenchmarkFig3(b *testing.B) { benchFigure(b, 3) }
func BenchmarkFig4(b *testing.B) { benchFigure(b, 4) }
func BenchmarkFig5(b *testing.B) { benchFigure(b, 5) }
func BenchmarkFig6(b *testing.B) { benchFigure(b, 6) }
func BenchmarkFig7(b *testing.B) { benchFigure(b, 7) }
func BenchmarkFig8(b *testing.B) { benchFigure(b, 8) }
func BenchmarkFig9(b *testing.B) { benchFigure(b, 9) }

func BenchmarkSummary(b *testing.B) {
	// Regenerating the summary touches every experiment cell; after the
	// figure benches it is fully cached.
	r := evalRunner()
	s, err := r.Summarize()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var sink int
	for i := 0; i < b.N; i++ {
		sink += len(report.Summary(s))
	}
	_ = sink
	b.ReportMetric(s.OverallMean, "overall|err|%")
	b.ReportMetric(s.OverProjectedPct, "over-projected%")
	for _, row := range s.PerSystem {
		b.ReportMetric(row.MeanAbs, row.Target+"|err|%")
	}
}

// --- §5 overhead claim --------------------------------------------------------

func BenchmarkProfileOverhead(b *testing.B) {
	// The paper claims ≤0.05 % profiling overhead. In the simulator the
	// profile costs zero *simulated* time by construction; this bench
	// measures the host-side cost of running LU-MZ with the profiler
	// attached (compare BenchmarkRunUnprofiled).
	base := arch.MustGet(arch.Hydra)
	cfg := nas.Config{Bench: nas.LU, Class: nas.ClassC, Ranks: 16}
	for i := 0; i < b.N; i++ {
		if _, err := nas.Run(cfg, base); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRunUnprofiled(b *testing.B) {
	// Baseline for BenchmarkProfileOverhead: the identical job with no
	// observer attached.
	base := arch.MustGet(arch.Hydra)
	inst, err := nas.New(nas.Config{Bench: nas.LU, Class: nas.ClassC, Ranks: 16})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := inst.RunBare(base); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Eq. 1 / multi-Sendrecv -----------------------------------------------------

func BenchmarkMultiSendrecv(b *testing.B) {
	// The Eq. 1 parameterisation sweep on the base machine at 16 ranks.
	base := arch.MustGet(arch.Hydra)
	sizes := units.Pow2Sizes(1*units.KiB, 64*units.KiB)
	var tab *imb.Table
	for i := 0; i < b.N; i++ {
		var err error
		tab, err = imb.Run(base, 16, sizes)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(tab.NBOverhead()*1e6, "overhead_µs")
	b.ReportMetric(tab.InFlightIntra(16*units.KiB)*1e6, "inflight16K_µs")
}

// --- Ablations -------------------------------------------------------------------

// ablationFixture builds one (pipeline, app, measured compute ratio) case:
// LU-MZ class C at 16 ranks onto POWER6.
type ablationFixture struct {
	pipe     *core.Pipeline
	app      *core.AppModel
	measured units.Seconds // measured per-task compute on the target
}

var (
	ablOnce sync.Once
	abl     ablationFixture
	ablErr  error
)

func ablation(b *testing.B) *ablationFixture {
	b.Helper()
	ablOnce.Do(func() {
		r := evalRunner()
		v, err := r.Validate(arch.Power6, nas.LU, nas.ClassC, 16)
		if err != nil {
			ablErr = err
			return
		}
		abl.measured = v.MeasuredCompute
		pipe, err := core.NewPipeline(arch.MustGet(arch.Hydra), arch.MustGet(arch.Power6), []int{4, 8, 16})
		if err != nil {
			ablErr = err
			return
		}
		app, err := pipe.CharacterizeApp(nas.LU, nas.ClassC, []int{4, 8, 16})
		if err != nil {
			ablErr = err
			return
		}
		abl.pipe, abl.app = pipe, app
	})
	if ablErr != nil {
		b.Fatal(ablErr)
	}
	return &abl
}

// computeErr is the |%| error of a compute projection vs the measured
// per-task compute time.
func computeErr(cp *core.ComputeProjection, measured units.Seconds) float64 {
	e := 100 * (cp.TargetTime - measured) / measured
	if e < 0 {
		return -e
	}
	return e
}

func BenchmarkAblationGAvsNNLS(b *testing.B) {
	fx := ablation(b)
	var ga, nnls *core.ComputeProjection
	var err error
	for i := 0; i < b.N; i++ {
		ga, err = fx.pipe.ProjectComputeOpts(fx.app, 16, core.ComputeOptions{})
		if err != nil {
			b.Fatal(err)
		}
		nnls, err = fx.pipe.ProjectComputeOpts(fx.app, 16, core.ComputeOptions{UseNNLS: true})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(computeErr(ga, fx.measured), "ga|err|%")
	b.ReportMetric(computeErr(nnls, fx.measured), "nnls|err|%")
	b.ReportMetric(float64(len(ga.Surrogate)), "ga_members")
	b.ReportMetric(float64(len(nnls.Surrogate)), "nnls_members")
}

func BenchmarkAblationRankAdjust(b *testing.B) {
	fx := ablation(b)
	var with, without *core.ComputeProjection
	var err error
	for i := 0; i < b.N; i++ {
		with, err = fx.pipe.ProjectComputeOpts(fx.app, 16, core.ComputeOptions{})
		if err != nil {
			b.Fatal(err)
		}
		without, err = fx.pipe.ProjectComputeOpts(fx.app, 16, core.ComputeOptions{SkipRankAdjustment: true})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(computeErr(with, fx.measured), "adjusted|err|%")
	b.ReportMetric(computeErr(without, fx.measured), "unadjusted|err|%")
}

func BenchmarkAblationWaitTime(b *testing.B) {
	// Communication projection with the WaitTime model on vs off
	// (off = project transfer only, drop the wait component).
	fx := ablation(b)
	r := evalRunner()
	v, err := r.Validate(arch.Power6, nas.LU, nas.ClassC, 16)
	if err != nil {
		b.Fatal(err)
	}
	cp, err := fx.pipe.ProjectCompute(fx.app, 16)
	if err != nil {
		b.Fatal(err)
	}
	var comm *core.CommProjection
	for i := 0; i < b.N; i++ {
		comm, err = fx.pipe.ProjectComm(fx.app, 16, cp.SpeedupRatio())
		if err != nil {
			b.Fatal(err)
		}
	}
	withWait := comm.TargetTotal()
	var withoutWait units.Seconds
	for _, rp := range comm.Routines {
		withoutWait += rp.TargetTransfer
	}
	measured := v.MeasuredComm
	errOf := func(p units.Seconds) float64 {
		e := 100 * (p - measured) / measured
		if e < 0 {
			return -e
		}
		return e
	}
	b.ReportMetric(errOf(withWait), "with_wait|err|%")
	b.ReportMetric(errOf(withoutWait), "without_wait|err|%")
}

func BenchmarkAblationScalingModel(b *testing.B) {
	// CCSM γ on vs off when projecting an unprofiled core count (12,
	// characterised at 8): γ-off pretends per-task compute is flat.
	fx := ablation(b)
	var proj *core.Projection
	var err error
	for i := 0; i < b.N; i++ {
		proj, err = fx.pipe.Project(fx.app, 12)
		if err != nil {
			b.Fatal(err)
		}
	}
	res, err := nas.Run(nas.Config{Bench: nas.LU, Class: nas.ClassC, Ranks: 12}, arch.MustGet(arch.Power6))
	if err != nil {
		b.Fatal(err)
	}
	measured := res.Profile.MeanCompute()
	errOf := func(p units.Seconds) float64 {
		e := 100 * (p - measured) / measured
		if e < 0 {
			return -e
		}
		return e
	}
	b.ReportMetric(errOf(proj.ComputeTime), "with_gamma|err|%")
	b.ReportMetric(errOf(proj.ComputeTime/proj.Gamma), "without_gamma|err|%")
}

// --- parallel evaluation engine ---------------------------------------------------

// The engine's contract is that Workers only changes wall-clock time,
// never output (see DESIGN.md, "Parallelism & determinism"). These benches
// time the serial path against the pooled path back to back and attach the
// ratio as a metric: ~1x on a single-core host, approaching the core count
// at GOMAXPROCS >= 4.

func benchNewPipeline(b *testing.B, workers int) {
	base := arch.MustGet(arch.Hydra)
	tgt := arch.MustGet(arch.Power6)
	for i := 0; i < b.N; i++ {
		if _, err := core.NewPipelineOpts(base, tgt, []int{4, 8, 16}, core.Options{Workers: workers}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNewPipelineSerial(b *testing.B)   { benchNewPipeline(b, 1) }
func BenchmarkNewPipelineParallel(b *testing.B) { benchNewPipeline(b, 0) }

// skipSpeedupOnOneProc guards the serial-vs-pooled speedup benchmarks:
// at GOMAXPROCS=1 the pooled path has no second scheduler thread to run
// on, so the ratio measures goroutine overhead (~1x of pure noise), not
// speedup, and recording it would pollute committed baselines.
func skipSpeedupOnOneProc(b *testing.B) {
	b.Helper()
	if runtime.GOMAXPROCS(0) == 1 {
		b.Skip("speedup ratio is meaningless at GOMAXPROCS=1 (the pooled path cannot parallelise); rerun with GOMAXPROCS>=2")
	}
}

func BenchmarkNewPipelineSpeedup(b *testing.B) {
	skipSpeedupOnOneProc(b)
	base := arch.MustGet(arch.Hydra)
	tgt := arch.MustGet(arch.Power6)
	counts := []int{4, 8, 16}
	var serial, parallel time.Duration
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		if _, err := core.NewPipelineOpts(base, tgt, counts, core.Options{Workers: 1}); err != nil {
			b.Fatal(err)
		}
		serial += time.Since(t0)
		t1 := time.Now()
		if _, err := core.NewPipelineOpts(base, tgt, counts, core.Options{Workers: 0}); err != nil {
			b.Fatal(err)
		}
		parallel += time.Since(t1)
	}
	b.ReportMetric(serial.Seconds()/parallel.Seconds(), "speedup")
}

// benchFigureEngine times one full figure evaluation on a fresh runner
// (nothing cached) at a given pool size.
func benchFigureEngine(b *testing.B, workers int, gen func(*figures.Runner) error) time.Duration {
	b.Helper()
	r := figures.NewRunner()
	r.Workers = workers
	t0 := time.Now()
	if err := gen(r); err != nil {
		b.Fatal(err)
	}
	return time.Since(t0)
}

func BenchmarkLUFigureSpeedup(b *testing.B) {
	skipSpeedupOnOneProc(b)
	// Figure 6 end to end — three machine-pair pipelines, three app
	// characterisations, six validation cells — serial vs pooled.
	lu := func(r *figures.Runner) error { _, err := r.LUFigure(); return err }
	var serial, parallel time.Duration
	for i := 0; i < b.N; i++ {
		serial += benchFigureEngine(b, 1, lu)
		parallel += benchFigureEngine(b, 0, lu)
	}
	b.ReportMetric(serial.Seconds()/parallel.Seconds(), "speedup")
}

func BenchmarkAllFiguresSpeedup(b *testing.B) {
	skipSpeedupOnOneProc(b)
	// The paper's entire evaluation grid (Figures 3-9, 54 cells) on a
	// fresh runner, serial vs pooled. Expensive: minutes per iteration.
	all := func(r *figures.Runner) error { _, err := r.AllFigures(); return err }
	var serial, parallel time.Duration
	for i := 0; i < b.N; i++ {
		serial += benchFigureEngine(b, 1, all)
		parallel += benchFigureEngine(b, 0, all)
	}
	b.ReportMetric(serial.Seconds()/parallel.Seconds(), "speedup")
}

// --- simulator throughput ---------------------------------------------------------

func BenchmarkDESThroughput(b *testing.B) {
	// Raw event-processing rate of the discrete-event kernel.
	const procs, steps = 64, 100
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		k := des.NewKernel()
		for p := 0; p < procs; p++ {
			k.Spawn(fmt.Sprintf("p%d", p), func(pr *des.Proc) {
				for s := 0; s < steps; s++ {
					pr.Advance(1e-6)
				}
			})
		}
		if err := k.Run(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(procs*steps), "events/op")
}

func BenchmarkMPIMatch(b *testing.B) {
	// Message-matching cost: a ring exchange with tag matching across 64
	// ranks on the base machine.
	base := arch.MustGet(arch.Hydra)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w, err := mpi.NewWorld(base, 64)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := w.Run(func(r *mpi.Rank) {
			next := (r.ID() + 1) % r.Size()
			prev := (r.ID() + r.Size() - 1) % r.Size()
			for step := 0; step < 20; step++ {
				s := r.Isend(next, 4096, step)
				v := r.Irecv(prev, 4096, step)
				r.Waitall(s, v)
			}
		}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(64*20*2, "messages/op")
}

func BenchmarkProfilerHostCost(b *testing.B) {
	// Host-side cost of the profiling observer itself.
	p := mpiprof.New(16)
	ev := mpi.RoutineEvent{Routine: mpi.RoutineWaitall, Bytes: 64 * units.KiB,
		Count: 8, Elapsed: 1e-3, Peers: []int{1, 2, 3, 4, 5, 6, 7, 8}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.OnRoutine(i%16, ev)
		p.OnCompute(i%16, 1e-3)
	}
}
