// Package swapp is SWAPP — Surrogate-based Workload Application Performance
// Projection — a framework for projecting the performance of HPC
// applications onto machines they cannot be run on, using benchmark data,
// reproduced from:
//
//	Sharkawi, DeSota, Panda, Stevens, Taylor, Wu.
//	"SWAPP: A Framework for Performance Projections of HPC Applications
//	Using Benchmarks", IPDPS 2012.
//
// The package is the public face of the repository. It wires together the
// internal substrates — machine models, a hardware-counter simulator, a
// discrete-event MPI simulator, the SPEC CPU2006 and IMB surrogate
// benchmark suites, and the NAS Multi-Zone applications — behind a small
// API:
//
//	result, err := swapp.Project(swapp.Request{
//	        Target: swapp.TargetPower6,
//	        Bench:  swapp.BT, Class: swapp.ClassC, Ranks: 64,
//	})
//
// Everything runs on simulated hardware (see DESIGN.md for the
// substitutions); SWAPP itself — profiles in, projections out — is exactly
// the paper's pipeline.
package swapp

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/figures"
	"repro/internal/ga"
	"repro/internal/mpi"
	"repro/internal/nas"
	"repro/internal/obs"
	"repro/internal/units"
)

// Machine short names (the paper's Table 2 systems).
const (
	BaseHydra      = arch.Hydra    // TAMU Hydra, POWER5+ — the base machine
	TargetPower6   = arch.Power6   // IBM POWER6 575 cluster
	TargetBlueGene = arch.BlueGene // IBM BlueGene/P
	TargetWestmere = arch.Westmere // IBM iDataPlex, Xeon X5670
)

// Benchmarks (the paper's applications).
const (
	BT = nas.BT // BT-MZ: uneven zones, WaitTime-dominated at scale
	SP = nas.SP // SP-MZ: even zones, transfer-driven communication
	LU = nas.LU // LU-MZ: 16 zones, minimal communication
)

// Problem classes.
const (
	ClassC = nas.ClassC
	ClassD = nas.ClassD
)

// Machines lists the modelled systems (sorted by short name).
func Machines() []*arch.Machine { return arch.All() }

// MachineNames lists the modelled systems' short names.
func MachineNames() []string { return arch.Names() }

// Request selects one projection: application, problem size, target
// machine and core count. Base defaults to the paper's Hydra.
type Request struct {
	Base   string
	Target string
	Bench  nas.Benchmark
	Class  nas.Class
	Ranks  int
	// Workers bounds the evaluation engine's concurrency (benchmark
	// characterisation, application profiling, the GA surrogate search):
	// 0 means runtime.GOMAXPROCS(0), 1 forces the serial path. The
	// projection is byte-identical for every value.
	Workers int
	// Obs, when non-nil, instruments the projection: hierarchical spans
	// across pipeline construction, characterisation and both projection
	// components, plus counters and histograms (see internal/obs). nil — the
	// default — costs nothing, and the projection is byte-identical with
	// observability on or off.
	Obs *obs.Scope
	// StageTimeout, when positive, bounds each pipeline stage (benchmark
	// gathering, characterisation, projection, validation) individually,
	// in addition to any deadline on the request's context. A stage that
	// overruns fails with an error wrapping ErrStageTimeout, which
	// distinguishes "one stage hung" from "the whole request timed out".
	// Zero — the default — imposes no per-stage bound.
	StageTimeout time.Duration
	// Data, when non-nil, supplies pre-measured benchmark data instead of
	// running the suites in-process (see core.PipelineData) — the paper's
	// real workflow, and the degraded-input path: partial data flows
	// through with recorded defects instead of failing.
	Data *core.PipelineData
	// Store, when non-nil, is a layered artifact cache shared across
	// requests (see core.NewStore): machine characterisations, app
	// profiles, and finished compute surrogates are resolved through it
	// instead of recomputed, amortising the pipeline's cost across every
	// request that shares a machine, an app, or a (base, app, target)
	// triple. Purely an amortisation — the projection is byte-identical
	// with or without a store — and ignored when Data supplies external
	// benchmark data or while fault injection is armed.
	Store *core.Store
	// WarmStart opts the GA surrogate search into seeding its initial
	// population from Store's nearest cached surrogate for the same
	// (base, app, target). Unlike Store itself this CAN change the
	// projected numbers — the search explores from a different
	// generation 0, and the outcome depends on which prior requests
	// populated the store — so it is off by default and recorded in the
	// projection's Quality report when it fires. Requires Store.
	WarmStart bool
	// OnGAProgress, when non-nil, taps the GA surrogate search's
	// per-generation progress (member index, generation, running best
	// fitness, cloned best genome — the checkpoint material for resumable
	// async jobs). Strictly passive; must be safe for concurrent calls
	// (ensemble members run in parallel). Progress only fires when the
	// search actually runs — a projection served whole from Store
	// completes without generations.
	OnGAProgress func(member, gen int, best float64, genome []float64)
	// ResumeSeeds, when non-empty, seed the GA surrogate search's initial
	// population directly — the async-job checkpoint-resume path. Like
	// WarmStart this CAN change the projected numbers, so resumed
	// searches bypass Store's content-addressed surrogate entries and
	// record a GAResume defect in the projection's Quality report.
	ResumeSeeds [][]float64
	// OnGACheckpoint, when non-nil, receives each GA ensemble member's
	// full evolution state after every evolved generation — the
	// durability tap for crash-recoverable jobs (see ga.Checkpoint).
	// Strictly passive; must be safe for concurrent calls.
	OnGACheckpoint func(member int, cp *ga.Checkpoint)
	// ResumeCheckpoints, when non-empty, restore the GA ensemble members
	// from checkpoints captured by OnGACheckpoint (indexed by member; nil
	// members start cold). This is the EXACT resume path: for a search
	// that started cold under the same request, the result is
	// bit-identical to the uninterrupted run's, so no quality defect is
	// recorded. Takes precedence over ResumeSeeds.
	ResumeCheckpoints []*ga.Checkpoint
}

// withDefaults validates and fills the request.
func (r Request) withDefaults() (Request, error) {
	if r.Base == "" {
		r.Base = BaseHydra
	}
	if _, err := arch.Get(r.Base); err != nil {
		return r, err
	}
	if _, err := arch.Get(r.Target); err != nil {
		return r, err
	}
	if r.Base == r.Target {
		return r, fmt.Errorf("swapp: target must differ from base (%s)", r.Base)
	}
	if r.Ranks <= 0 {
		return r, fmt.Errorf("swapp: ranks must be positive")
	}
	if max := nas.MaxRanks(r.Bench, r.Class); max == 0 {
		return r, fmt.Errorf("swapp: unknown benchmark/class %s.%c", r.Bench, r.Class)
	} else if r.Ranks > max {
		return r, fmt.Errorf("swapp: %s.%c supports at most %d ranks", r.Bench, r.Class, max)
	}
	return r, nil
}

// Normalized validates the request and returns it with defaults filled
// (empty Base becomes the paper's Hydra). Services that key caches on
// request contents should normalise first, so that equivalent requests
// share an entry.
func (r Request) Normalized() (Request, error) { return r.withDefaults() }

// ErrStageTimeout marks a pipeline stage that overran the request's
// per-stage budget (Request.StageTimeout) while the request as a whole
// still had time left. Services use errors.Is against it to distinguish a
// hung stage from an expired request deadline.
var ErrStageTimeout = errors.New("swapp: stage timeout exceeded")

// stage runs one pipeline stage under the per-stage budget. With no budget
// set it is a direct call. When the stage's own deadline fires while the
// request context is still alive, the context error is converted into an
// ErrStageTimeout-wrapping error naming the stage.
func (r Request) stage(ctx context.Context, name string, f func(context.Context) error) error {
	if r.StageTimeout <= 0 {
		return f(ctx)
	}
	sctx, cancel := context.WithTimeout(ctx, r.StageTimeout)
	defer cancel()
	err := f(sctx)
	if err != nil && errors.Is(err, context.DeadlineExceeded) && ctx.Err() == nil {
		return fmt.Errorf("swapp: stage %q exceeded its %v budget: %w", name, r.StageTimeout, ErrStageTimeout)
	}
	return err
}

// Result is a finished projection, optionally with its validation against
// a measured run.
type Result struct {
	Request    Request
	Projection *core.Projection
	// Validation is nil unless ProjectAndValidate was used.
	Validation *core.Validation
}

// TotalSeconds is the projected application runtime.
func (r *Result) TotalSeconds() units.Seconds { return r.Projection.Total }

// String summarises the result.
func (r *Result) String() string {
	p := r.Projection
	s := fmt.Sprintf("%s @%d ranks on %s: projected %s (compute %s + communication %s)",
		p.App, p.Ck, p.Target,
		units.FormatSeconds(p.Total), units.FormatSeconds(p.ComputeTime), units.FormatSeconds(p.CommTime))
	if r.Validation != nil {
		s += fmt.Sprintf("; measured %s (error %+.2f%%)",
			units.FormatSeconds(r.Validation.MeasuredTotal), r.Validation.ErrCombined)
	}
	if q := p.Quality; !q.Empty() {
		s += fmt.Sprintf("; quality grade %s (%d input defects)", q.Grade(), len(q.Defects()))
	}
	return s
}

// Project runs the full SWAPP pipeline for one request: benchmark data
// gathering on base and target, application characterisation on the base,
// and the combined compute + communication projection. The target machine
// is never given the application.
func Project(req Request) (*Result, error) {
	return ProjectContext(context.Background(), req)
}

// ProjectContext is Project with cancellation: the evaluation aborts
// promptly with ctx.Err() at stage boundaries when ctx is cancelled or its
// deadline expires. The context has no effect on the numbers — a completed
// projection is byte-identical to Project's.
func ProjectContext(ctx context.Context, req Request) (*Result, error) {
	req, err := req.withDefaults()
	if err != nil {
		return nil, err
	}
	pipe, app, err := prepare(ctx, req)
	if err != nil {
		return nil, err
	}
	var proj *core.Projection
	if err := req.stage(ctx, "project", func(c context.Context) error {
		var err error
		proj, err = pipe.ProjectCtx(c, app, req.Ranks)
		return err
	}); err != nil {
		return nil, err
	}
	return &Result{Request: req, Projection: proj}, nil
}

// ProjectAndValidate additionally runs the application on the (simulated)
// target — the ground truth a SWAPP user does not have — and reports the
// projection error.
func ProjectAndValidate(req Request) (*Result, error) {
	return ProjectAndValidateContext(context.Background(), req)
}

// ProjectAndValidateContext is ProjectAndValidate with cancellation,
// under the same contract as ProjectContext.
func ProjectAndValidateContext(ctx context.Context, req Request) (*Result, error) {
	req, err := req.withDefaults()
	if err != nil {
		return nil, err
	}
	pipe, app, err := prepare(ctx, req)
	if err != nil {
		return nil, err
	}
	var v *core.Validation
	if err := req.stage(ctx, "validate", func(c context.Context) error {
		var err error
		v, err = pipe.ValidateCtx(c, app, req.Ranks)
		return err
	}); err != nil {
		return nil, err
	}
	return &Result{Request: req, Projection: v.Proj, Validation: v}, nil
}

// prepare builds the pipeline and app model for a request, each stage
// under the request's per-stage budget.
func prepare(ctx context.Context, req Request) (*core.Pipeline, *core.AppModel, error) {
	base := arch.MustGet(req.Base)
	target := arch.MustGet(req.Target)
	counts := charCountsFor(req.Bench, req.Class, req.Ranks)
	var pipe *core.Pipeline
	if err := req.stage(ctx, "pipeline", func(c context.Context) error {
		var err error
		pipe, err = core.NewPipelineCtx(c, base, target, counts,
			core.Options{Workers: req.Workers, Obs: req.Obs, Data: req.Data,
				Store: req.Store, WarmStart: req.WarmStart,
				OnGAProgress: req.OnGAProgress, SurrogateSeeds: req.ResumeSeeds,
				OnGACheckpoint: req.OnGACheckpoint, SurrogateCheckpoints: req.ResumeCheckpoints})
		return err
	}); err != nil {
		return nil, nil, err
	}
	var app *core.AppModel
	if err := req.stage(ctx, "characterize", func(c context.Context) error {
		var err error
		app, err = pipe.CharacterizeAppCtx(c, req.Bench, req.Class, counts)
		return err
	}); err != nil {
		return nil, nil, err
	}
	return pipe, app, nil
}

// charCountsFor picks the base-machine characterisation sweep for a
// request: the paper's counts, restricted to the benchmark's limits and
// including the requested count when it is profile-able.
func charCountsFor(b nas.Benchmark, c nas.Class, ranks int) []int {
	max := nas.MaxRanks(b, c)
	set := map[int]bool{}
	for _, v := range []int{16, 32, 64, 128, ranks} {
		if v >= 2 && v <= max {
			set[v] = true
		}
	}
	if b == nas.LU {
		set[4], set[8] = true, true
	}
	var out []int
	for v := range set {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

// NewEvaluation returns a figures.Runner for regenerating the paper's full
// evaluation (Tables 1–2, Figures 3–9, summary). See cmd/figures for a CLI
// around it.
func NewEvaluation() *figures.Runner { return figures.NewRunner() }

// CommClasses re-exports the routine classes used in reports.
var CommClasses = []mpi.Class{mpi.ClassP2PNB, mpi.ClassP2PB, mpi.ClassCollective}
